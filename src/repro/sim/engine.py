"""The fixed-step closed-loop simulation engine.

One engine step reproduces the data flow of the vehicle under test:

    ground truth --sensors--> readings --faults--> --attacks-->
        [supervisor watchdog] --> estimator --> controller
        ^                                                |
        |                                        command |
        +-- dynamics <-- actuators <--attacks (command channel) <--+

and appends one fully populated :class:`~repro.trace.schema.TraceRecord`.
The engine is the *only* place fault/attack hooks are invoked, so the
trace's injection ground-truth labels are exact.  Benign faults
(:mod:`repro.faults`) are applied before attacks on each channel —
hardware degrades before an adversary touches the message — and both
compose in one run.  A :class:`~repro.control.supervisor.SupervisedController`
follower additionally gets its staleness/NaN watchdog interposed between
injection and the estimator.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import TYPE_CHECKING

from repro.control.acc import AccController
from repro.control.estimator import Ekf, EkfConfig
from repro.control.follower import SpeedProfile, WaypointFollower
from repro.control.base import make_lateral_controller
from repro.control.supervisor import SupervisedController, SupervisorConfig
from repro.geom.angles import angle_diff
from repro.geom.polyline import Polyline
from repro.geom.vec import Vec2
from repro.sim.dynamics import VehicleState
from repro.sim.lead import LeadVehicle
from repro.sim.rng import RngStreams
from repro.sim.scenario import Scenario, ScenarioOutcome
from repro.sim.sensors.radar import Radar, RadarConfig
from repro.sim.sensors.suite import SensorSuite
from repro.sim.vehicle import Vehicle
from repro.trace.metrics import TraceMetrics, compute_metrics
from repro.trace.recorder import TraceRecorder
from repro.trace.schema import Trace, TraceMeta

if TYPE_CHECKING:  # annotation-only import; repro.attacks imports repro.sim
    from repro.attacks.campaign import AttackCampaign
    from repro.faults.campaign import FaultCampaign

__all__ = ["RunResult", "SimulationRunner", "run_scenario"]

_DIVERGENCE_CTE = 30.0  # meters; beyond this the run is flagged diverged


@dataclass(slots=True)
class RunResult:
    """Everything a single run produced."""

    trace: Trace
    metrics: TraceMetrics
    outcome: ScenarioOutcome
    scenario: Scenario
    controller_name: str
    attack_label: str


class SimulationRunner:
    """Runs one scenario with one controller under one attack campaign."""

    def __init__(
        self,
        scenario: Scenario,
        follower: "WaypointFollower | SupervisedController",
        campaign: "AttackCampaign | None" = None,
        ekf_config: EkfConfig | None = None,
        faults: "FaultCampaign | None" = None,
    ):
        from repro.attacks.campaign import AttackCampaign
        from repro.faults.campaign import FaultCampaign

        self.scenario = scenario
        self.follower = follower
        self.campaign = campaign or AttackCampaign.none()
        self.faults = faults or FaultCampaign.none()
        self.ekf_config = ekf_config
        self._rngs = RngStreams(scenario.seed)
        self._injectors: list = []

    # ------------------------------------------------------------------
    def run(self) -> RunResult:
        """Execute the scenario to completion and score it."""
        scenario = self.scenario
        route = scenario.route
        dt = scenario.dt

        vehicle = self._spawn_vehicle(route)
        sensors = SensorSuite(scenario.sensors, self._rngs)
        ekf = Ekf(self.ekf_config)
        ekf.reset(vehicle.state.x, vehicle.state.y, vehicle.state.yaw,
                  scenario.initial_speed)

        self.follower.reset()
        self.campaign.reset()
        self.faults.reset()
        for index, attack in enumerate(self.campaign.attacks):
            attack.bind_rng(self._rngs.stream(f"attack.{index}.{attack.name}"))
        for index, fault in enumerate(self.faults.faults):
            fault.bind_rng(self._rngs.stream(f"fault.{index}.{fault.name}"))
        # Faults fire before attacks on every channel: hardware degrades
        # upstream of any adversary in the message path.
        injectors = list(self.faults.faults) + list(self.campaign.attacks)
        supervisor = (self.follower
                      if isinstance(self.follower, SupervisedController)
                      else None)

        lead: LeadVehicle | None = None
        radar: Radar | None = None
        if scenario.lead is not None:
            lead = LeadVehicle(scenario.lead, start_station=0.0)
            radar = Radar(RadarConfig(), self._rngs.stream("sensor.radar"))

        self._injectors = injectors
        meta = TraceMeta(
            scenario=scenario.name,
            controller=self.follower.name,
            attack=self.campaign.label,
            seed=scenario.seed,
            dt=dt,
            route_length=route.length,
        )
        if self.faults.faults:
            meta.extra["fault"] = self.faults.label
        recorder = TraceRecorder(meta)

        last_predict_t: float | None = None
        station_hint: float | None = None
        diverged = False
        divergence_time: float | None = None

        for step in range(scenario.num_steps):
            t = step * dt
            state = vehicle.state

            # --- ground truth at time t --------------------------------
            proj = route.project(state.position, hint_station=station_hint)
            station_hint = proj.station

            # --- sensing + fault/attack injection ----------------------
            readings = sensors.poll(t, state)
            gps_fix = readings.gps
            if gps_fix is not None:
                for attack in self.campaign.attacks:
                    attack.observe_gps(t, gps_fix)
                gps_fix = self._apply_channel(
                    "gps", t, gps_fix, lambda a, v: a.on_gps(t, v)
                )
            imu = self._apply_channel(
                "imu", t, readings.imu, lambda a, v: a.on_imu(t, v)
            )
            odom = self._apply_channel(
                "odometry", t, readings.odometry, lambda a, v: a.on_odometry(t, v)
            )
            compass = self._apply_channel(
                "compass", t, readings.compass, lambda a, v: a.on_compass(t, v)
            )
            radar_reading = None
            gap_true = 0.0
            if lead is not None and radar is not None:
                # Line-of-sight range/closing-rate, as a real radar sees it.
                lead_pos = lead.position_on(route)
                los = lead_pos - state.position
                gap_true = los.norm()
                if gap_true > 1e-6:
                    ego_vel = Vec2(
                        state.v * math.cos(state.yaw),
                        state.v * math.sin(state.yaw),
                    )
                    rel_vel = lead.velocity_on(route) - ego_vel
                    closing = rel_vel.dot(los) / gap_true
                else:
                    closing = 0.0
                radar_reading = radar.poll_gap(t, gap_true, closing)
                radar_reading = self._apply_channel(
                    "radar", t, radar_reading, lambda a, v: a.on_radar(t, v)
                )

            # --- degradation supervisor (staleness/NaN watchdog) -------
            if supervisor is not None:
                gps_fix, imu, odom, compass, radar_reading = (
                    supervisor.filter_readings(
                        t, gps=gps_fix, imu=imu, odom=odom,
                        compass=compass, radar=radar_reading,
                    )
                )

            # --- state estimation --------------------------------------
            if imu is not None:
                predict_dt = dt if last_predict_t is None else max(t - last_predict_t, 1e-6)
                ekf.predict(imu.yaw_rate, imu.accel, predict_dt)
                last_predict_t = t
            if gps_fix is not None:
                ekf.update_gps(gps_fix.x, gps_fix.y)
            if compass is not None:
                ekf.update_compass(compass.yaw)
            if odom is not None:
                ekf.update_speed(odom.speed)
            estimate = ekf.estimate

            # --- control -----------------------------------------------
            decision = self.follower.decide(estimate, route, dt,
                                            radar=radar_reading)

            # --- command channel attacks -------------------------------
            command = (decision.steer_cmd, decision.accel_cmd)
            command = self._apply_channel(
                "command", t, command,
                lambda a, v: a.on_command(t, v[0], v[1]),
            )
            if command is not None:
                vehicle.apply_control(command[0], command[1])
            # A dropped command leaves the previous setpoint latched.

            # --- physics ------------------------------------------------
            vehicle.step(dt)
            if lead is not None:
                lead.step(t, dt)

            # --- ground truth scoring ----------------------------------
            if route.closed:
                dist_to_goal = -1.0  # sentinel: no goal on a loop route
            else:
                dist_to_goal = state.position.distance_to(route.end_point())
            cte_true = proj.cross_track
            if not diverged and abs(cte_true) > _DIVERGENCE_CTE:
                diverged = True
                divergence_time = t

            active_attack = self._active_attack(t)
            active_fault = self._active_fault(t)
            recorder.record(
                step=step,
                t=t,
                truth={
                    "x": state.x,
                    "y": state.y,
                    "yaw": state.yaw,
                    "v": state.v,
                    "yaw_rate": state.yaw_rate,
                    "accel": state.accel,
                    "lat_accel": state.lateral_accel,
                    "cte": cte_true,
                    "heading_err": angle_diff(state.yaw, proj.heading),
                    "station": proj.station,
                    "dist_to_goal": dist_to_goal,
                },
                gps=(gps_fix.x, gps_fix.y) if gps_fix is not None else None,
                imu=(imu.yaw_rate, imu.accel) if imu is not None else None,
                odom=odom.speed if odom is not None else None,
                compass=compass.yaw if compass is not None else None,
                estimate={
                    "x": estimate.x,
                    "y": estimate.y,
                    "yaw": estimate.yaw,
                    "v": estimate.v,
                    "cov_trace": estimate.cov_trace,
                    "nis_gps": estimate.nis_gps,
                    "nis_speed": estimate.nis_speed,
                    "nis_compass": estimate.nis_compass,
                },
                control={
                    "cte": decision.cte,
                    "heading_err": decision.heading_err,
                    "station": decision.station,
                    "target_speed": decision.target_speed,
                    "steer_cmd": decision.steer_cmd,
                    "accel_cmd": decision.accel_cmd,
                },
                actuation={
                    "steer": vehicle.actuators.steer,
                    "accel": vehicle.actuators.accel,
                },
                attack={
                    "active": active_attack is not None,
                    "name": active_attack.name if active_attack else "",
                    "channel": active_attack.channel if active_attack else "",
                },
                radar=(radar_reading.range_m, radar_reading.range_rate)
                if radar_reading is not None else None,
                lead={"gap": gap_true, "speed": lead.speed}
                if lead is not None else None,
                fault={
                    "active": active_fault is not None,
                    "name": active_fault.name if active_fault else "",
                    "channel": active_fault.channel if active_fault else "",
                },
                supervisor={
                    "mode": supervisor.mode,
                    "lost": len(supervisor.lost_channels),
                } if supervisor is not None else None,
            )

        trace = recorder.trace
        metrics = compute_metrics(trace)
        outcome = ScenarioOutcome(
            completed=True,
            diverged=diverged,
            divergence_time=divergence_time,
        )
        return RunResult(
            trace=trace,
            metrics=metrics,
            outcome=outcome,
            scenario=self.scenario,
            controller_name=self.follower.name,
            attack_label=self.campaign.label,
        )

    # ------------------------------------------------------------------
    def _spawn_vehicle(self, route: Polyline) -> Vehicle:
        start_point, start_heading = route.start_pose()
        offset = self.scenario.initial_lateral_offset
        if offset != 0.0:
            left = Vec2(-math.sin(start_heading), math.cos(start_heading))
            start_point = start_point + left * offset
        state = VehicleState(
            x=start_point.x,
            y=start_point.y,
            yaw=start_heading,
            v=self.scenario.initial_speed,
        )
        return Vehicle(model=self.scenario.model, initial_state=state)

    def _apply_channel(self, channel: str, t: float, value, hook):
        """Run every active injector (faults first, then attacks) of
        ``channel`` over the message.

        Every matching injector additionally gets the generic
        :meth:`~repro.attacks.base.Attack.observe` call on the message
        as it stands when the injector's turn comes — active or not —
        so freeze/replay models can capture healthy traffic.
        """
        if value is None:
            return None
        for injector in self._injectors:
            if injector.channel != channel:
                continue
            injector.observe(t, value)
            if injector.active(t):
                value = hook(injector, value)
                if value is None:
                    return None
        return value

    def _active_attack(self, t: float):
        for attack in self.campaign.attacks:
            if attack.active(t):
                return attack
        return None

    def _active_fault(self, t: float):
        for fault in self.faults.faults:
            if fault.active(t):
                return fault
        return None


def run_scenario(
    scenario: Scenario,
    controller: str = "pure_pursuit",
    campaign: AttackCampaign | None = None,
    profile: SpeedProfile | None = None,
    ekf_config: EkfConfig | None = None,
    faults: "FaultCampaign | None" = None,
    supervised: bool = False,
    supervisor_config: SupervisorConfig | None = None,
) -> RunResult:
    """Convenience one-call runner used throughout examples and tests.

    Args:
        scenario: the driving task.
        controller: lateral controller name (``pure_pursuit``, ``stanley``,
            ``lqr`` or ``mpc``).
        campaign: attack campaign (default: none).
        profile: speed profile override (default: scenario cruise speed).
        ekf_config: estimator configuration override (e.g. innovation
            gating for the E10 mitigation experiment).
        faults: benign fault campaign (default: none) — composes with
            ``campaign``; faults are applied first on each channel.
        supervised: wrap the follower in a
            :class:`~repro.control.supervisor.SupervisedController`
            (graceful degradation under sensor faults — experiment E14).
        supervisor_config: watchdog/degradation policy override (implies
            ``supervised``).
    """
    if profile is None:
        profile = SpeedProfile(cruise_speed=scenario.cruise_speed)
    follower: WaypointFollower | SupervisedController = WaypointFollower(
        make_lateral_controller(controller),
        profile=profile,
        acc=AccController() if scenario.lead is not None else None,
    )
    if supervised or supervisor_config is not None:
        follower = SupervisedController(follower, config=supervisor_config)
    return SimulationRunner(scenario, follower, campaign, ekf_config,
                            faults=faults).run()
