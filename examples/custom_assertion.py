"""Extending ADAssure: author a new assertion and a new cause profile.

The methodology's extension points are (1) the assertion DSL and (2) the
cause/assertion knowledge base.  This example debugs a fault the built-in
catalog was not designed for — a *brake sabotage* that halves commanded
deceleration — by:

1. running it and observing the weak/ambiguous diagnosis,
2. authoring a one-function assertion that compares commanded vs. measured
   longitudinal acceleration,
3. adding a cause profile for it, and
4. re-diagnosing: the new cause now ranks first.

Run:  python examples/custom_assertion.py
"""

from repro import run_scenario, standard_scenarios
from repro.attacks.base import Attack, AttackWindow
from repro.attacks.campaign import AttackCampaign
from repro.core import (
    CauseProfile,
    FunctionAssertion,
    check_trace,
    default_catalog,
    default_knowledge_base,
    diagnose,
)


class BrakeSabotageAttack(Attack):
    """Halves any commanded deceleration (tampered brake-by-wire ECU)."""

    name = "brake_sabotage"
    channel = "command"

    def on_command(self, t, steer, accel):
        if accel < 0.0:
            return (steer, accel * 0.5)
        return (steer, accel)


def accel_consistency(record, state):
    """Commanded vs. applied acceleration must roughly agree.

    The drive actuator is a first-order lag (tau = 0.25 s), so we compare
    against a lagged model of the command, exactly like the built-in A16
    does for steering.
    """
    import math

    last_t = state.get("t")
    state["t"] = record.t
    if last_t is None:
        state["model"] = record.accel_applied
        return None
    dt = record.t - last_t
    alpha = 1.0 - math.exp(-dt / 0.25)
    state["model"] += alpha * (record.accel_cmd - state["model"])
    error = abs(record.accel_applied - state["model"])
    return 1.0 - error / 0.3


def main() -> None:
    scenario = standard_scenarios(seed=7)["urban_loop"]
    campaign = AttackCampaign(
        label="brake_sabotage",
        attacks=[BrakeSabotageAttack(AttackWindow(start=15.0))],
    )
    result = run_scenario(scenario, controller="pure_pursuit",
                          campaign=campaign)

    print("=== step 1: diagnose with the stock catalog ===")
    report = check_trace(result.trace, default_catalog())
    stock = diagnose(report)
    print(f"fired: {report.fired_ids or 'nothing'}")
    print(f"top cause: {stock.top().cause} "
          f"(posterior {stock.top().posterior:.0%}) — "
          "the stock catalog has no brake-path check\n")

    print("=== step 2+3: author assertion U1 and its cause profile ===")
    u1 = FunctionAssertion(
        "U1", "longitudinal actuation consistency", accel_consistency,
        category="actuation", settle_time=2.0, debounce_on=4, debounce_off=10,
    )
    catalog = default_catalog() + [u1]
    kb = default_knowledge_base()
    kb.add(CauseProfile(
        cause="brake_sabotage",
        description="brake-by-wire tampering: commanded deceleration halved",
        fire_probs={"U1": 0.95, "A14": 0.25, "A12": 0.20},
    ))

    print("=== step 4: re-diagnose ===")
    report2 = check_trace(result.trace, catalog)
    refined = diagnose(report2, kb)
    print(f"fired: {report2.fired_ids}")
    print(f"top cause: {refined.top().cause} "
          f"(posterior {refined.top().posterior:.0%})")
    ok = refined.top().cause == "brake_sabotage"
    print(f"\nrefinement loop closed the gap: {'yes' if ok else 'no'}")


if __name__ == "__main__":
    main()
