"""Differential exactness: counterfactual probes vs the original runs.

The whole counterfactual layer rests on one claim: a probe whose
intervention is re-applied *unchanged* is the original run — bit for bit.
If re-simulation drifted even one ULP, margin deltas, necessity checks
and window bisection would measure simulator noise instead of causality.
This suite pins the claim across a small attack x fault x controller
grid:

* the probe path (``Intervention.campaigns`` ->
  ``reparameterized_attack``/``reparameterized_fault``) reproduces the
  campaign-construction path (``standard_attack``/``standard_fault``)
  exactly: every trace column, the metrics, the outcome, the verdicts;
* both cache layers hand back what was stored: a memo hit returns the
  very same objects, a disk hit round-trips every column bitwise;
* the lockstep batch engine's prefetch path produces the same bits as
  per-probe serial simulation, so ``--sim-engine batch`` is purely an
  optimization.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.attacks.campaign import standard_attack
from repro.core.checker import check_trace
from repro.experiments.counterfactual import (
    Intervention,
    ProbeEngine,
    Subject,
)
from repro.experiments.runner import clear_cache
from repro.faults.campaign import standard_fault
from repro.sim.engine import run_scenario
from repro.trace.schema import Trace

DURATION = 20.0
ONSET = 10.0
SEED = 7

# Attack x fault x controller lanes, mirroring the campaign-grid product
# (single attacks, benign faults, compositions, every controller family).
LANES = [
    ("pure_pursuit", "gps_bias", "none"),
    ("pure_pursuit", "none", "gps_dropout"),
    ("pure_pursuit", "gps_bias", "odom_freeze"),
    ("stanley", "gps_drift", "none"),
    ("lqr", "odom_scale", "gps_latency"),
    ("mpc", "compass_offset", "none"),
]


def assert_traces_identical(a: Trace, b: Trace) -> None:
    assert len(a) == len(b)
    ac, bc = a.columns(), b.columns()
    for name in Trace.field_names:
        x, y = ac.get(name), bc.get(name)
        if x.dtype.kind == "f":
            assert np.array_equal(x, y, equal_nan=True), (
                f"column {name!r} differs")
        else:
            assert np.array_equal(x, y), f"column {name!r} differs"


def assert_verdicts_identical(a, b) -> None:
    assert a.fired_ids == b.fired_ids
    assert a.evidence() == b.evidence()
    assert len(a.violations) == len(b.violations)
    for sa, sb in zip(a.summaries.values(), b.summaries.values()):
        assert sa.worst_margin == sb.worst_margin
        assert sa.episodes == sb.episodes


def subject_for(controller: str) -> Subject:
    return Subject(scenario="s_curve", controller=controller, seed=SEED,
                   duration=DURATION)


def original_run(controller: str, attack: str, fault: str):
    """The run as the campaign/grid layer would produce it."""
    subject = subject_for(controller)
    return run_scenario(
        subject.build_scenario(),
        controller=controller,
        campaign=standard_attack(attack, onset=ONSET),
        faults=standard_fault(fault, onset=ONSET),
    )


@pytest.mark.parametrize("controller,attack,fault", LANES)
def test_unchanged_probe_is_bit_identical_to_original(
        controller, attack, fault):
    """Probe(original intervention) == original run, column for column."""
    oracle = original_run(controller, attack, fault)
    oracle_report = check_trace(oracle.trace)

    engine = ProbeEngine(subject_for(controller), budget=4,
                         sim_engine="serial")
    iv = Intervention.from_labels(attack=attack, fault=fault, onset=ONSET)
    out = engine.outcome(iv)

    assert_traces_identical(oracle.trace, out.result.trace)
    assert oracle.metrics == out.result.metrics
    assert oracle.outcome == out.result.outcome
    assert_verdicts_identical(oracle_report, out.report)


def test_memo_hit_returns_stored_objects():
    engine = ProbeEngine(subject_for("pure_pursuit"), budget=4,
                         sim_engine="serial")
    # An intensity no other test probes: the first outcome is a fresh
    # simulation no matter what already sits in the process-global memo.
    iv = Intervention.from_labels(attack="gps_bias", onset=ONSET,
                                  intensity=0.775)
    first = engine.outcome(iv)
    assert first.source == "sim"
    second = engine.outcome(iv)
    assert second.source == "memo"
    assert second.result is first.result
    assert second.report is first.report
    assert engine.stats.memo_hits == 1


def test_disk_hit_round_trips_bitwise():
    """With the memo dropped, the disk layer must replay the same bits."""
    engine = ProbeEngine(subject_for("pure_pursuit"), budget=4,
                         sim_engine="serial")
    iv = Intervention.from_labels(attack="gps_bias", fault="gps_dropout",
                                  onset=ONSET)
    first = engine.outcome(iv)

    clear_cache()  # memo only; the on-disk entry survives
    engine2 = ProbeEngine(subject_for("pure_pursuit"), budget=4,
                          sim_engine="serial")
    second = engine2.outcome(iv)
    assert second.source == "disk"
    assert engine2.stats.disk_hits == 1
    assert_traces_identical(first.result.trace, second.result.trace)
    assert first.result.metrics == second.result.metrics
    assert_verdicts_identical(first.report, second.report)


def test_background_violations_subtracted_from_signature():
    """A truncated s_curve trips its goal-liveness assertion (A15) even
    nominally; the explanation must classify it as background and still
    isolate the attack over the attributable remainder."""
    from repro.experiments.counterfactual import explain

    report = explain("s_curve", "pure_pursuit", attack="gps_bias",
                     onset=15.0, seed=SEED, duration=40.0, resolution=1.0)
    assert report.violated
    assert "A15" in report.background
    assert report.necessary
    assert report.isolated
    # Background assertions carry no margin-delta claim.
    assert "A15" not in report.margin_deltas
    assert "background" in report.render()


class TestBatchEngineDifferential:
    """Serial vs batch probe execution over edited-intervention sets."""

    def edited_interventions(self):
        base = Intervention.from_labels(attack="gps_bias",
                                        fault="gps_dropout", onset=ONSET)
        return [
            base,
            base.with_window(ONSET, ONSET + 3.0),
            base.with_channels((("attack", "gps_bias"),)),
            base.with_intensity(0.5),
        ]

    def snapshots(self, engine, interventions):
        outs = [engine.outcome(iv) for iv in interventions]
        return [(out.result.trace, out.result.metrics, out.report)
                for out in outs]

    def test_prefetch_matches_serial_bitwise(self, tmp_path, monkeypatch):
        subject = subject_for("pure_pursuit")
        ivs = self.edited_interventions()

        monkeypatch.setenv("ADASSURE_CACHE_DIR", str(tmp_path / "serial"))
        clear_cache()
        serial_engine = ProbeEngine(subject, budget=8, sim_engine="serial")
        serial = self.snapshots(serial_engine, ivs)
        assert serial_engine.stats.executed == len(ivs)

        # Fresh cache + memo: the batch path must actually simulate.
        monkeypatch.setenv("ADASSURE_CACHE_DIR", str(tmp_path / "batch"))
        clear_cache()
        batch_engine = ProbeEngine(subject, budget=8, sim_engine="batch")
        prefetched = batch_engine.prefetch(ivs)
        assert prefetched == len(ivs)
        assert batch_engine.stats.batch_groups == 1
        assert batch_engine.stats.batch_points == len(ivs)
        batch = self.snapshots(batch_engine, ivs)

        for (st, sm, sr), (bt, bm, br) in zip(serial, batch):
            assert_traces_identical(st, bt)
            assert sm == bm
            assert_verdicts_identical(sr, br)

    def test_prefetch_skips_cached_probes(self, tmp_path, monkeypatch):
        monkeypatch.setenv("ADASSURE_CACHE_DIR", str(tmp_path))
        clear_cache()
        subject = subject_for("pure_pursuit")
        ivs = self.edited_interventions()
        engine = ProbeEngine(subject, budget=8, sim_engine="batch")
        engine.prefetch(ivs)
        # Everything already committed: a second prefetch batches nothing.
        assert engine.prefetch(ivs) == 0
