"""Tests for repro.geom.vec: Vec2 and Pose."""

import math

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.geom.vec import Pose, Vec2

finite = st.floats(min_value=-1e6, max_value=1e6, allow_nan=False,
                   allow_infinity=False)
angles = st.floats(min_value=-10.0, max_value=10.0, allow_nan=False)


class TestVec2Arithmetic:
    def test_add_sub(self):
        assert Vec2(1, 2) + Vec2(3, -1) == Vec2(4, 1)
        assert Vec2(1, 2) - Vec2(3, -1) == Vec2(-2, 3)

    def test_scalar_mul_div(self):
        assert Vec2(1, -2) * 3 == Vec2(3, -6)
        assert 3 * Vec2(1, -2) == Vec2(3, -6)
        assert Vec2(3, -6) / 3 == Vec2(1, -2)

    def test_neg(self):
        assert -Vec2(1, -2) == Vec2(-1, 2)

    def test_dot_cross(self):
        assert Vec2(1, 0).dot(Vec2(0, 1)) == 0.0
        assert Vec2(2, 3).dot(Vec2(4, 5)) == 23.0
        assert Vec2(1, 0).cross(Vec2(0, 1)) == 1.0
        assert Vec2(0, 1).cross(Vec2(1, 0)) == -1.0

    def test_norm(self):
        assert Vec2(3, 4).norm() == 5.0
        assert Vec2(3, 4).norm_sq() == 25.0

    def test_distance(self):
        assert Vec2(1, 1).distance_to(Vec2(4, 5)) == 5.0

    def test_heading(self):
        assert Vec2(1, 0).heading() == 0.0
        assert Vec2(0, 1).heading() == pytest.approx(math.pi / 2)

    def test_unit(self):
        u = Vec2(3, 4).unit()
        assert u.norm() == pytest.approx(1.0)
        with pytest.raises(ZeroDivisionError):
            Vec2(0, 0).unit()

    def test_perp_is_left_normal(self):
        assert Vec2(1, 0).perp() == Vec2(0, 1)

    def test_lerp_endpoints_and_middle(self):
        a, b = Vec2(0, 0), Vec2(2, 4)
        assert a.lerp(b, 0.0) == a
        assert a.lerp(b, 1.0) == b
        assert a.lerp(b, 0.5) == Vec2(1, 2)

    def test_from_polar(self):
        v = Vec2.from_polar(2.0, math.pi / 2)
        assert v.x == pytest.approx(0.0, abs=1e-12)
        assert v.y == pytest.approx(2.0)

    def test_as_tuple(self):
        assert Vec2(1.5, -2.5).as_tuple() == (1.5, -2.5)


class TestVec2Properties:
    @given(finite, finite, angles)
    def test_rotation_preserves_norm(self, x, y, angle):
        v = Vec2(x, y)
        assert v.rotated(angle).norm() == pytest.approx(v.norm(), abs=1e-6,
                                                        rel=1e-9)

    @given(finite, finite, angles)
    def test_rotate_and_back(self, x, y, angle):
        v = Vec2(x, y)
        w = v.rotated(angle).rotated(-angle)
        assert w.x == pytest.approx(x, abs=1e-6, rel=1e-9)
        assert w.y == pytest.approx(y, abs=1e-6, rel=1e-9)

    @given(finite, finite, finite, finite)
    def test_dot_symmetry_cross_antisymmetry(self, ax, ay, bx, by):
        a, b = Vec2(ax, ay), Vec2(bx, by)
        assert a.dot(b) == pytest.approx(b.dot(a), rel=1e-9, abs=1e-9)
        assert a.cross(b) == pytest.approx(-b.cross(a), rel=1e-9, abs=1e-9)


class TestPose:
    def test_forward_left(self):
        p = Pose(Vec2(0, 0), math.pi / 2)
        assert p.forward().x == pytest.approx(0.0, abs=1e-12)
        assert p.forward().y == pytest.approx(1.0)
        assert p.left().x == pytest.approx(-1.0)

    def test_local_world_roundtrip(self):
        p = Pose(Vec2(3, -2), 0.7)
        q = Vec2(5, 9)
        back = p.to_world(p.to_local(q))
        assert back.x == pytest.approx(q.x)
        assert back.y == pytest.approx(q.y)

    def test_to_local_frame_convention(self):
        # A point straight ahead has +x body coordinate.
        p = Pose(Vec2(0, 0), math.pi / 2)
        local = p.to_local(Vec2(0, 5))
        assert local.x == pytest.approx(5.0)
        assert local.y == pytest.approx(0.0, abs=1e-12)

    def test_moved_and_turned(self):
        p = Pose(Vec2(0, 0), 0.0).moved(2.0).turned(math.pi)
        assert p.x == pytest.approx(2.0)
        assert p.yaw == pytest.approx(math.pi)

    @given(finite, finite, angles, finite, finite)
    def test_local_world_inverse_property(self, px, py, yaw, qx, qy):
        p = Pose(Vec2(px, py), yaw)
        q = Vec2(qx, qy)
        r = p.to_local(p.to_world(q))
        assert r.x == pytest.approx(qx, abs=1e-5, rel=1e-7)
        assert r.y == pytest.approx(qy, abs=1e-5, rel=1e-7)
