"""CI smoke scenario for the streaming service.

One server, two concurrent sessions built from *real* closed-loop
simulations (not synthetic records): a nominal run and a GPS-drift
attacked run.  The attacked session is forced through a mid-stream
disconnect and resume.  Both verdicts must be byte-identical to offline
:func:`check_trace`, and the fleet aggregates must reflect exactly the
two sessions.

CI runs this file as its own job step under a hard timeout — if the
service deadlocks (a lost wakeup in backpressure, a resume loop), the
job fails by timeout rather than hanging the pipeline.
"""

from __future__ import annotations

import asyncio

import pytest

from repro.attacks.campaign import standard_attack
from repro.core.checker import check_trace
from repro.service.client import fetch_status, stream_trace
from repro.sim.engine import run_scenario

from service_utils import serving
from conftest import short_scenario


@pytest.fixture(scope="module")
def fleet_traces():
    scenario = short_scenario("s_curve", seed=11, duration=20.0)
    nominal = run_scenario(scenario).trace
    attacked = run_scenario(
        scenario, campaign=standard_attack("gps_drift", onset=8.0)).trace
    return nominal, attacked


def test_two_session_smoke(fleet_traces, tmp_path):
    nominal, attacked = fleet_traces

    async def go():
        async with serving(tmp_path, shards=1) as server:
            outcomes = await asyncio.gather(
                stream_trace(nominal, "127.0.0.1", server.port,
                             "smoke-nominal", chunk_records=64),
                stream_trace(attacked, "127.0.0.1", server.port,
                             "smoke-attacked", chunk_records=64,
                             disconnect_after_chunks=2),
            )
            status = await fetch_status("127.0.0.1", server.port)
            return outcomes, status

    (out_nominal, out_attacked), status = asyncio.run(go())

    # verdicts byte-identical to the offline oracle
    assert out_nominal.verdict["report"] == check_trace(nominal).to_dict()
    assert out_attacked.verdict["report"] == check_trace(attacked).to_dict()

    # the disconnected session really took the resume path
    assert out_attacked.reconnects >= 1
    assert status["counters"]["suspends"] >= 1
    assert status["counters"]["resumes"] >= 1

    # exactly one verdict per session, fleet view consistent
    assert status["counters"]["verdicts_issued"] == 2
    assert status["fleet"]["sessions_completed"] == 2
    assert out_attacked.verdict["any_fired"] is True
    assert out_attacked.verdict["top_cause"] is not None


def test_smoke_verdict_replay_after_restart(fleet_traces, tmp_path):
    """Second half of the CI scenario: restart the server on the same
    store and ask for the attacked session's verdict again."""
    nominal, attacked = fleet_traces

    async def first():
        async with serving(tmp_path, shards=1) as server:
            await stream_trace(attacked, "127.0.0.1", server.port,
                               "smoke-replay", chunk_records=64)

    async def second():
        async with serving(tmp_path, shards=0) as server:
            return await stream_trace(attacked, "127.0.0.1", server.port,
                                      "smoke-replay", chunk_records=64)

    asyncio.run(first())
    outcome = asyncio.run(second())
    assert outcome.resumed_finished, "verdict must come from the store"
    assert outcome.chunks_sent == 0
    assert outcome.verdict["report"] == check_trace(attacked).to_dict()
