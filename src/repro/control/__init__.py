"""Control algorithms under debug.

This package implements the standard AV path-tracking stack the paper's
methodology targets: an EKF localization filter consuming the (attackable)
sensor channels, four lateral controllers from the path-tracking
literature, a PID longitudinal controller, and a
:class:`~repro.control.follower.WaypointFollower` agent that combines them
into the closed-loop policy the simulator drives.  The
:class:`~repro.control.supervisor.SupervisedController` wrapper hardens
that stack against benign sensor faults (:mod:`repro.faults`) with a
staleness/NaN watchdog and a graceful-degradation policy.
"""

from repro.control.acc import AccConfig, AccController
from repro.control.base import (
    ControlDecision,
    LateralController,
    SteerDecision,
    make_lateral_controller,
)
from repro.control.defects import (
    ControllerDefect,
    DefectiveController,
    make_defect,
)
from repro.control.estimator import Ekf, EkfConfig, Estimate
from repro.control.follower import SpeedProfile, WaypointFollower
from repro.control.lqr import LqrController
from repro.control.mpc import MpcController
from repro.control.pid import PidSpeedController
from repro.control.pure_pursuit import PurePursuitController
from repro.control.stanley import StanleyController
from repro.control.supervisor import (
    SupervisedController,
    SupervisorConfig,
    make_supervised_follower,
)

__all__ = [
    "LateralController",
    "SteerDecision",
    "ControlDecision",
    "make_lateral_controller",
    "PurePursuitController",
    "StanleyController",
    "LqrController",
    "MpcController",
    "PidSpeedController",
    "Ekf",
    "EkfConfig",
    "Estimate",
    "WaypointFollower",
    "SpeedProfile",
    "AccController",
    "AccConfig",
    "ControllerDefect",
    "DefectiveController",
    "make_defect",
    "SupervisedController",
    "SupervisorConfig",
    "make_supervised_follower",
]
