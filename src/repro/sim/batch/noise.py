"""Pre-generated sensor schedules and noise tapes for batch lanes.

The serial engine draws sensor noise step by step from per-sensor named
streams.  Two facts make pre-generation exact:

* The sampling schedule (``Sensor.sample_due``) is a pure function of
  time — it never looks at vehicle state — so the set of due steps can be
  replayed once per ``(period, dt, n_steps)``.
* numpy ``Generator`` streams consume values sequentially across call
  boundaries: one ``standard_normal(k)`` call yields the same values as
  ``k`` scalar calls, and ``normal(0, s, ...)`` equals
  ``0.0 + s * standard_normal(...)`` bitwise.  So each lane's full noise
  sequence can be drawn in one call per sensor and spread over the due
  steps.

With ``dropout_prob > 0`` the dropout uniform draw interleaves with the
noise draws on the *same* stream, so the tape generator falls back to a
per-step replay issuing the identical RNG calls the serial sensor issues.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.sim.rng import RngStreams
from repro.sim.sensors.suite import SensorSuiteConfig

__all__ = ["LaneSensorTapes", "due_steps", "build_lane_tapes"]

_SCHEDULE_CACHE: dict[tuple[float, float, int], np.ndarray] = {}


def due_steps(period: float, dt: float, n_steps: int) -> np.ndarray:
    """Boolean per-step due mask, replaying ``Sensor.sample_due`` exactly."""
    key = (period, dt, n_steps)
    if key not in _SCHEDULE_CACHE:
        due = np.zeros(n_steps, dtype=bool)
        next_sample = 0.0
        for step in range(n_steps):
            t = step * dt
            if t + 1e-9 < next_sample:
                continue
            next_sample += period
            if next_sample <= t:
                next_sample = t + period
            due[step] = True
        _SCHEDULE_CACHE[key] = due
    return _SCHEDULE_CACHE[key]


@dataclass(slots=True)
class LaneSensorTapes:
    """One lane's per-step sensor freshness and noise components.

    All arrays are length ``n_steps``; noise entries are only meaningful
    where the matching ``*_fresh`` flag is set.  The measurement model is
    linear in the state, so state-dependent parts are added at run time:
    ``gps_x = state.x + walk_x + noise_x`` etc., with the exact serial
    association order.
    """

    gps_fresh: np.ndarray
    gps_walk_x: np.ndarray
    gps_walk_y: np.ndarray
    gps_noise_x: np.ndarray
    gps_noise_y: np.ndarray
    imu_fresh: np.ndarray
    imu_gyro_bias: float
    imu_accel_bias: float
    imu_gyro_noise: np.ndarray
    imu_accel_noise: np.ndarray
    odom_fresh: np.ndarray
    odom_scale: float
    odom_noise: np.ndarray
    compass_fresh: np.ndarray
    compass_noise: np.ndarray


def _scalar_normals(rng: np.random.Generator, std: float, count: int) -> np.ndarray:
    """``count`` draws matching ``float(rng.normal(0.0, std))`` each."""
    if count == 0:
        return np.zeros(0)
    return 0.0 + std * rng.standard_normal(count)


def build_lane_tapes(
    config: SensorSuiteConfig, rngs: RngStreams, dt: float, n_steps: int
) -> LaneSensorTapes:
    """Generate one lane's tapes from its own seed-rooted stream family.

    Draw order per stream matches the serial ``SensorSuite`` exactly:
    constructor draws (IMU biases, odometry scale) first, then the
    per-fresh-step measurement draws in poll order.
    """
    # --- GPS ----------------------------------------------------------
    gps_cfg = config.gps
    gps_rng = rngs.stream("sensor.gps")
    gps_due = due_steps(gps_cfg.period, dt, n_steps)
    n = n_steps
    walk_x = np.zeros(n)
    walk_y = np.zeros(n)
    noise_x = np.zeros(n)
    noise_y = np.zeros(n)
    if gps_cfg.dropout_prob > 0.0:
        gps_fresh = np.zeros(n, dtype=bool)
        walk = np.zeros(2)
        for step in np.flatnonzero(gps_due):
            if gps_rng.random() < gps_cfg.dropout_prob:
                continue
            gps_fresh[step] = True
            if gps_cfg.walk_std > 0:
                walk = walk + gps_rng.normal(0.0, gps_cfg.walk_std, size=2)
            noise = (
                gps_rng.normal(0.0, gps_cfg.noise_std, size=2)
                if gps_cfg.noise_std > 0 else np.zeros(2)
            )
            walk_x[step] = walk[0]
            walk_y[step] = walk[1]
            noise_x[step] = noise[0]
            noise_y[step] = noise[1]
    else:
        gps_fresh = gps_due
        k = int(gps_fresh.sum())
        draws_per_step = (2 if gps_cfg.walk_std > 0 else 0) + (
            2 if gps_cfg.noise_std > 0 else 0
        )
        if k and draws_per_step:
            z = gps_rng.standard_normal(k * draws_per_step).reshape(k, draws_per_step)
            col = 0
            if gps_cfg.walk_std > 0:
                inc = 0.0 + gps_cfg.walk_std * z[:, col:col + 2]
                col += 2
                walk = np.cumsum(inc, axis=0)
                walk_x[gps_fresh] = walk[:, 0]
                walk_y[gps_fresh] = walk[:, 1]
            if gps_cfg.noise_std > 0:
                noise = 0.0 + gps_cfg.noise_std * z[:, col:col + 2]
                noise_x[gps_fresh] = noise[:, 0]
                noise_y[gps_fresh] = noise[:, 1]

    # --- IMU ----------------------------------------------------------
    imu_cfg = config.imu
    imu_rng = rngs.stream("sensor.imu")
    # Constructor draws happen before any measurement, even at zero std.
    gyro_bias = float(imu_rng.normal(0.0, imu_cfg.gyro_bias_std))
    accel_bias = float(imu_rng.normal(0.0, imu_cfg.accel_bias_std))
    imu_due = due_steps(imu_cfg.period, dt, n_steps)
    gyro_noise = np.zeros(n)
    accel_noise = np.zeros(n)
    if imu_cfg.dropout_prob > 0.0:
        # Dropout uniforms interleave with the noise normals on the same
        # stream, so replay the serial per-step call sequence verbatim.
        imu_fresh = np.zeros(n, dtype=bool)
        for step in np.flatnonzero(imu_due):
            if imu_rng.random() < imu_cfg.dropout_prob:
                continue
            imu_fresh[step] = True
            gyro_noise[step] = float(imu_rng.normal(0.0, imu_cfg.gyro_noise_std))
            accel_noise[step] = float(imu_rng.normal(0.0, imu_cfg.accel_noise_std))
    else:
        imu_fresh = imu_due
        k = int(imu_fresh.sum())
        if k:
            z = imu_rng.standard_normal(2 * k).reshape(k, 2)
            gyro_noise[imu_fresh] = 0.0 + imu_cfg.gyro_noise_std * z[:, 0]
            accel_noise[imu_fresh] = 0.0 + imu_cfg.accel_noise_std * z[:, 1]

    # --- Odometry -----------------------------------------------------
    odo_cfg = config.odometry
    odo_rng = rngs.stream("sensor.odometry")
    scale = 1.0 + float(odo_rng.normal(0.0, odo_cfg.scale_error_std))
    odo_due = due_steps(odo_cfg.period, dt, n_steps)
    odo_noise = np.zeros(n)
    if odo_cfg.dropout_prob > 0.0:
        odo_fresh = np.zeros(n, dtype=bool)
        for step in np.flatnonzero(odo_due):
            if odo_rng.random() < odo_cfg.dropout_prob:
                continue
            odo_fresh[step] = True
            odo_noise[step] = float(odo_rng.normal(0.0, odo_cfg.noise_std))
    else:
        odo_fresh = odo_due
        odo_noise[odo_fresh] = _scalar_normals(
            odo_rng, odo_cfg.noise_std, int(odo_fresh.sum())
        )

    # --- Compass ------------------------------------------------------
    cmp_cfg = config.compass
    cmp_rng = rngs.stream("sensor.compass")
    cmp_due = due_steps(cmp_cfg.period, dt, n_steps)
    cmp_noise = np.zeros(n)
    if cmp_cfg.dropout_prob > 0.0:
        cmp_fresh = np.zeros(n, dtype=bool)
        for step in np.flatnonzero(cmp_due):
            if cmp_rng.random() < cmp_cfg.dropout_prob:
                continue
            cmp_fresh[step] = True
            cmp_noise[step] = float(cmp_rng.normal(0.0, cmp_cfg.noise_std))
    else:
        cmp_fresh = cmp_due
        cmp_noise[cmp_fresh] = _scalar_normals(
            cmp_rng, cmp_cfg.noise_std, int(cmp_fresh.sum())
        )

    return LaneSensorTapes(
        gps_fresh=gps_fresh,
        gps_walk_x=walk_x,
        gps_walk_y=walk_y,
        gps_noise_x=noise_x,
        gps_noise_y=noise_y,
        imu_fresh=imu_fresh,
        imu_gyro_bias=gyro_bias,
        imu_accel_bias=accel_bias,
        imu_gyro_noise=gyro_noise,
        imu_accel_noise=accel_noise,
        odom_fresh=odo_fresh,
        odom_scale=scale,
        odom_noise=odo_noise,
        compass_fresh=cmp_fresh,
        compass_noise=cmp_noise,
    )
