"""Arc-length parametrized polylines — the route primitive.

A :class:`Polyline` is an ordered sequence of waypoints with precomputed
cumulative arc length.  It supports the three queries a path tracker needs:

* ``project(point)`` — nearest point on the path, with signed cross-track
  error (positive = point is left of the path) and the arc-length station.
* ``sample(s)`` — position/heading/curvature at arc-length station ``s``.
* ``lookahead(s, distance)`` — the point ``distance`` meters further along.

Headings and curvatures are derived from the segment geometry; curvature is
estimated per-vertex from the turning angle over the adjacent segment
lengths (a standard discrete approximation).
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from collections.abc import Iterable, Sequence

import numpy as np

from repro.geom.angles import angle_diff
from repro.geom.vec import Vec2

__all__ = ["Polyline", "Projection", "PathSample"]


@dataclass(frozen=True, slots=True)
class Projection:
    """Result of projecting a point onto a polyline."""

    point: Vec2
    """Closest point on the path."""
    station: float
    """Arc length from the path start to :attr:`point`, meters."""
    cross_track: float
    """Signed lateral offset of the query point; positive = left of path."""
    heading: float
    """Path tangent heading at the projection, radians."""
    segment_index: int
    """Index of the segment containing the projection."""
    distance: float = 0.0
    """Euclidean distance from the query point to :attr:`point`.

    Equals ``|cross_track|`` in the interior of a segment but exceeds it
    when the projection clamps to a vertex (the query point then also has
    a longitudinal offset).
    """


@dataclass(frozen=True, slots=True)
class PathSample:
    """Path state at a given arc-length station."""

    point: Vec2
    heading: float
    curvature: float
    station: float


class Polyline:
    """An open or closed polyline with arc-length parametrization.

    Args:
        points: at least two distinct waypoints, in order.
        closed: if True the path wraps around (last point connects back to
            the first) and stations are taken modulo the total length.

    Raises:
        ValueError: on fewer than two points or zero-length segments.
    """

    def __init__(self, points: Iterable[Vec2], closed: bool = False):
        pts = [p if isinstance(p, Vec2) else Vec2(*p) for p in points]
        if len(pts) < 2:
            raise ValueError("a polyline needs at least two points")
        if closed and pts[0].distance_to(pts[-1]) > 1e-9:
            pts.append(pts[0])
        self._points = pts
        self._closed = closed
        self._xy = np.array([[p.x, p.y] for p in pts], dtype=float)
        deltas = np.diff(self._xy, axis=0)
        seg_lengths = np.hypot(deltas[:, 0], deltas[:, 1])
        if np.any(seg_lengths < 1e-12):
            raise ValueError("polyline contains zero-length segments")
        self._seg_lengths = seg_lengths
        self._cum = np.concatenate(([0.0], np.cumsum(seg_lengths)))
        self._headings = np.arctan2(deltas[:, 1], deltas[:, 0])
        self._curvatures = self._vertex_curvatures()

    # ------------------------------------------------------------------
    # Basic properties
    # ------------------------------------------------------------------
    @property
    def points(self) -> Sequence[Vec2]:
        """The waypoints (read-only view)."""
        return tuple(self._points)

    @property
    def closed(self) -> bool:
        return self._closed

    @property
    def length(self) -> float:
        """Total arc length, meters."""
        return float(self._cum[-1])

    @property
    def num_segments(self) -> int:
        return len(self._seg_lengths)

    def start_pose(self) -> tuple[Vec2, float]:
        """Initial point and tangent heading (useful to spawn a vehicle)."""
        return self._points[0], float(self._headings[0])

    def end_point(self) -> Vec2:
        """The final waypoint (== first waypoint for closed paths)."""
        return self._points[-1]

    # ------------------------------------------------------------------
    # Queries
    # ------------------------------------------------------------------
    def _wrap_station(self, s: float) -> float:
        if self._closed:
            return float(s % self.length)
        return float(min(max(s, 0.0), self.length))

    def sample(self, station: float) -> PathSample:
        """Path point/heading/curvature at arc-length ``station``.

        Open paths clamp the station to ``[0, length]``; closed paths wrap.
        """
        s = self._wrap_station(station)
        idx = int(np.searchsorted(self._cum, s, side="right") - 1)
        idx = min(max(idx, 0), self.num_segments - 1)
        ds = s - self._cum[idx]
        frac = ds / self._seg_lengths[idx]
        a = self._points[idx]
        b = self._points[idx + 1]
        point = a.lerp(b, float(frac))
        heading = float(self._headings[idx])
        curvature = self._interp_curvature(idx, float(frac))
        return PathSample(point=point, heading=heading, curvature=curvature, station=s)

    def lookahead(self, station: float, distance: float) -> PathSample:
        """Path sample ``distance`` meters beyond ``station``."""
        return self.sample(station + distance)

    def project(self, point: Vec2, hint_station: float | None = None) -> Projection:
        """Project a point onto the path (global nearest-point search).

        Args:
            point: query point.
            hint_station: if given, the search is restricted to a window of
                segments around this station, which keeps tracking O(1) per
                step and avoids snapping to the far side of closed circuits.
        """
        if hint_station is None:
            candidates = range(self.num_segments)
        else:
            candidates = self._window_segments(hint_station, window=30.0)
        best: tuple[float, int, float] | None = None  # (dist_sq, idx, t)
        px, py = point.x, point.y
        for idx in candidates:
            ax, ay = self._xy[idx]
            bx, by = self._xy[idx + 1]
            dx, dy = bx - ax, by - ay
            seg_len_sq = dx * dx + dy * dy
            t = ((px - ax) * dx + (py - ay) * dy) / seg_len_sq
            t = min(max(t, 0.0), 1.0)
            cx, cy = ax + t * dx, ay + t * dy
            # Products, not ``** 2``: CPython's float.__pow__ and numpy's
            # square differ in the last ulp for some inputs, and the batch
            # engine (repro.sim.batch) must reproduce this distance
            # bit-for-bit to pick the same segment.
            ex, ey = px - cx, py - cy
            dist_sq = ex * ex + ey * ey
            if best is None or dist_sq < best[0]:
                best = (dist_sq, idx, t)
        assert best is not None
        _, idx, t = best
        a = self._points[idx]
        b = self._points[idx + 1]
        closest = a.lerp(b, t)
        heading = float(self._headings[idx])
        tangent = Vec2(math.cos(heading), math.sin(heading))
        cross = tangent.cross(point - closest)
        station = float(self._cum[idx] + t * self._seg_lengths[idx])
        return Projection(
            point=closest,
            station=station,
            cross_track=cross,
            heading=heading,
            segment_index=idx,
            distance=point.distance_to(closest),
        )

    def remaining(self, station: float) -> float:
        """Arc length from ``station`` to the end (length for closed paths)."""
        if self._closed:
            return self.length
        return self.length - self._wrap_station(station)

    def resampled(self, spacing: float) -> "Polyline":
        """A new polyline with (approximately) uniform waypoint spacing."""
        if spacing <= 0:
            raise ValueError("spacing must be positive")
        n = max(int(math.ceil(self.length / spacing)), 1)
        stations = [i * self.length / n for i in range(n + 1)]
        if self._closed:
            stations = stations[:-1]
        pts = [self.sample(s).point for s in stations]
        return Polyline(pts, closed=self._closed)

    # ------------------------------------------------------------------
    # Internals
    # ------------------------------------------------------------------
    def _window_segments(self, station: float, window: float) -> range:
        s = self._wrap_station(station)
        lo = s - window
        hi = s + window
        if self._closed and (lo < 0 or hi > self.length):
            # The window wraps around the seam; fall back to a full search,
            # which is still cheap for the route sizes used here.
            return range(self.num_segments)
        lo_idx = int(np.searchsorted(self._cum, max(lo, 0.0), side="right") - 1)
        hi_idx = int(np.searchsorted(self._cum, min(hi, self.length), side="left"))
        lo_idx = min(max(lo_idx, 0), self.num_segments - 1)
        hi_idx = min(max(hi_idx, lo_idx + 1), self.num_segments)
        return range(lo_idx, hi_idx)

    def _vertex_curvatures(self) -> np.ndarray:
        """Discrete curvature at each vertex from the turning angle."""
        n_vertices = len(self._points)
        curv = np.zeros(n_vertices)
        for i in range(1, n_vertices - 1):
            turn = angle_diff(float(self._headings[i]), float(self._headings[i - 1]))
            ds = 0.5 * (self._seg_lengths[i - 1] + self._seg_lengths[i])
            curv[i] = turn / ds
        if self._closed:
            turn = angle_diff(float(self._headings[0]), float(self._headings[-1]))
            ds = 0.5 * (self._seg_lengths[-1] + self._seg_lengths[0])
            curv[0] = curv[-1] = turn / ds
        else:
            curv[0] = curv[1] if n_vertices > 2 else 0.0
            curv[-1] = curv[-2] if n_vertices > 2 else 0.0
        return curv

    def _interp_curvature(self, seg_idx: int, frac: float) -> float:
        return float(
            (1.0 - frac) * self._curvatures[seg_idx]
            + frac * self._curvatures[seg_idx + 1]
        )

    def __repr__(self) -> str:
        kind = "closed" if self._closed else "open"
        return (
            f"Polyline({len(self._points)} pts, {kind}, "
            f"length={self.length:.1f} m)"
        )
