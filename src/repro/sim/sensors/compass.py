"""Heading sensor (magnetometer-derived compass / dual-antenna GNSS heading).

Provides an absolute yaw observation, which the EKF needs to keep heading
observable, and which the A8 IMU/compass consistency assertion compares
against integrated gyro rate.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.geom.angles import normalize_angle
from repro.sim.dynamics import VehicleState
from repro.sim.sensors.base import Sensor, SensorConfig

__all__ = ["CompassReading", "Compass", "CompassConfig"]


@dataclass(frozen=True, slots=True)
class CompassReading:
    """One absolute-heading sample."""

    t: float
    yaw: float
    """Heading, rad, in (-pi, pi]."""

    def rotated(self, dyaw: float) -> "CompassReading":
        return CompassReading(self.t, normalize_angle(self.yaw + dyaw))


@dataclass(frozen=True, slots=True)
class CompassConfig(SensorConfig):
    """Compass noise model parameters."""

    rate_hz: float = 10.0
    noise_std: float = 0.01
    """White heading noise, rad (~0.6 degrees)."""

    def __post_init__(self) -> None:
        SensorConfig.__post_init__(self)
        if self.noise_std < 0:
            raise ValueError("noise_std must be non-negative")


class Compass(Sensor):
    """Absolute-heading sensor producing :class:`CompassReading` samples."""

    channel = "compass"

    def __init__(self, config: CompassConfig, rng: np.random.Generator):
        super().__init__(config, rng)
        self.compass_config = config

    def _measure(self, t: float, state: VehicleState) -> CompassReading:
        noise = float(self.rng.normal(0.0, self.compass_config.noise_std))
        return CompassReading(t=t, yaw=normalize_angle(state.yaw + noise))
