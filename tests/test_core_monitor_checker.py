"""Tests for the online monitor and offline checker (and their equality)."""

import pytest

from repro.core.catalog import default_catalog
from repro.core.checker import check_trace
from repro.core.dsl import BoundAssertion
from repro.core.monitor import OnlineMonitor

from conftest import make_record, make_trace


def bound_assertion(**kw):
    return BoundAssertion("T1", "test", channel="cte_true", bound=2.0,
                          debounce_on=2, debounce_off=3, **kw)


class TestOnlineMonitor:
    def test_feed_returns_closed_episodes(self):
        monitor = OnlineMonitor([bound_assertion()])
        out = []
        for i in range(40):
            cte = 5.0 if 10 <= i < 20 else 0.0
            out.extend(monitor.feed(make_record(i, cte_true=cte)))
        assert len(out) == 1
        assert out[0].assertion_id == "T1"

    def test_finish_closes_open_episodes(self):
        monitor = OnlineMonitor([bound_assertion()])
        for i in range(20):
            monitor.feed(make_record(i, cte_true=5.0))
        report = monitor.finish()
        assert report.summaries["T1"].fired

    def test_empty_stream_finish_well_formed(self):
        """Regression: finishing with zero records must return a clean
        zero-duration report, not crash or leak a bogus duration."""
        monitor = OnlineMonitor(default_catalog())
        report = monitor.finish()
        assert report.duration == 0.0
        assert report.violations == []
        assert not report.any_fired
        assert set(report.summaries) == {a.assertion_id
                                         for a in default_catalog()}
        assert report.first_violation_time() is None
        assert report.evidence() == {aid: 0.0 for aid in report.summaries}

    def test_single_record_duration_matches_trace_semantics(self):
        """One record spans no time: duration 0.0, exactly like
        Trace.duration for a sub-two-record trace."""
        monitor = OnlineMonitor([bound_assertion()])
        monitor.feed(make_record(0, t=5.0))
        report = monitor.finish()
        assert report.duration == 0.0

    def test_duplicate_ids_rejected(self):
        with pytest.raises(ValueError, match="duplicate"):
            OnlineMonitor([bound_assertion(), bound_assertion()])

    def test_finished_monitor_rejects_feed(self):
        monitor = OnlineMonitor([bound_assertion()])
        monitor.finish()
        with pytest.raises(RuntimeError):
            monitor.feed(make_record(0))

    def test_finish_idempotent(self):
        """A second finish() returns the same report instead of raising —
        a resuming client may request the verdict twice."""
        monitor = OnlineMonitor([bound_assertion()])
        for i in range(20):
            monitor.feed(make_record(i, cte_true=5.0))
        first = monitor.finish()
        again = monitor.finish()
        assert again is first
        assert first.summaries["T1"].fired

    def test_reset_rearms_for_new_stream(self):
        """reset() lets a pooled monitor serve a second, unrelated stream
        with verdicts identical to a fresh instance's."""
        monitor = OnlineMonitor([bound_assertion()])
        for i in range(20):
            monitor.feed(make_record(i, cte_true=5.0))
        assert monitor.finish().summaries["T1"].fired

        monitor.reset()
        for i in range(20):
            monitor.feed(make_record(i, cte_true=0.0))
        clean = monitor.finish()
        assert not clean.summaries["T1"].fired
        assert clean.violations == []

    def test_report_meta_from_trace(self):
        trace = make_trace(10)
        monitor = OnlineMonitor([bound_assertion()])
        monitor.feed_all(trace)
        report = monitor.finish(trace)
        assert report.scenario == "synthetic"
        assert report.duration == pytest.approx(trace.duration)


class TestOfflineChecker:
    def test_default_catalog_used(self):
        report = check_trace(make_trace(300))
        assert len(report.summaries) == len(default_catalog())

    def test_assertions_reusable_across_calls(self):
        assertions = [bound_assertion()]
        bad = make_trace(50, mutate=lambda s, r: r.replace(cte_true=5.0))
        good = make_trace(50)
        assert check_trace(bad, assertions).any_fired
        assert not check_trace(good, assertions).any_fired


class TestOnlineOfflineEquivalence:
    def test_identical_verdicts(self, nominal_run, gps_bias_run):
        for run in (nominal_run, gps_bias_run):
            trace = run.trace
            offline = check_trace(trace, default_catalog())

            monitor = OnlineMonitor(default_catalog())
            streamed = []
            for record in trace:
                streamed.extend(monitor.feed(record))
            online = monitor.finish(trace)

            assert offline.fired_ids == online.fired_ids
            assert len(offline.violations) == len(online.violations)
            for a, b in zip(offline.violations, online.violations):
                assert a == b
            for aid, summary in offline.summaries.items():
                assert online.summaries[aid] == summary
