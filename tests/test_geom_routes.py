"""Tests for repro.geom.routes."""

import math

import pytest

from repro.geom.routes import (
    arc_route,
    lane_change_route,
    s_curve_route,
    slalom_route,
    straight_route,
    urban_loop_route,
)


class TestStraight:
    def test_length_and_heading(self):
        r = straight_route(length=150.0)
        assert r.length == pytest.approx(150.0)
        __, heading = r.start_pose()
        assert heading == pytest.approx(0.0)

    def test_invalid(self):
        with pytest.raises(ValueError):
            straight_route(length=0.0)


class TestArc:
    def test_total_length(self):
        r = arc_route(radius=40.0, sweep=math.pi / 2, lead_in=20.0)
        assert r.length == pytest.approx(20.0 + 40.0 * math.pi / 2, rel=0.01)

    def test_starts_along_x(self):
        start, heading = arc_route().start_pose()
        assert start.x == pytest.approx(0.0)
        assert heading == pytest.approx(0.0, abs=0.01)

    def test_invalid(self):
        with pytest.raises(ValueError):
            arc_route(radius=-1.0)
        with pytest.raises(ValueError):
            arc_route(sweep=0.0)


class TestSCurve:
    def test_returns_to_centerline(self):
        r = s_curve_route(length=240.0, amplitude=12.0, periods=1.0)
        end = r.end_point()
        assert end.y == pytest.approx(0.0, abs=0.5)

    def test_amplitude_respected(self):
        r = s_curve_route(length=240.0, amplitude=10.0)
        max_y = max(abs(p.y) for p in r.points)
        assert max_y == pytest.approx(10.0, rel=0.02)

    def test_invalid(self):
        with pytest.raises(ValueError):
            s_curve_route(length=-5.0)


class TestSlalom:
    def test_gate_count_sets_length(self):
        r = slalom_route(gate_spacing=30.0, num_gates=6)
        assert r.length >= 30.0 * 7

    def test_invalid(self):
        with pytest.raises(ValueError):
            slalom_route(num_gates=0)


class TestLaneChange:
    def test_final_offset(self):
        r = lane_change_route(lane_offset=3.5)
        assert r.end_point().y == pytest.approx(3.5)

    def test_smooth_profile_monotone(self):
        r = lane_change_route(approach=20.0, maneuver=30.0, tail=20.0,
                              lane_offset=3.0)
        ys = [p.y for p in r.points]
        assert all(b - a > -1e-9 for a, b in zip(ys, ys[1:]))


class TestUrbanLoop:
    def test_closed(self):
        r = urban_loop_route()
        assert r.closed

    def test_length_plausible(self):
        r = urban_loop_route(straight=120.0, width=80.0, corner_radius=18.0)
        # Rounded rectangle perimeter: 2*(s-2r) + 2*(w-2r) + 2*pi*r
        expected = 2 * (120 - 36) + 2 * (80 - 36) + 2 * math.pi * 18
        assert r.length == pytest.approx(expected, rel=0.02)

    def test_invalid_radius(self):
        with pytest.raises(ValueError):
            urban_loop_route(corner_radius=0.0)
        with pytest.raises(ValueError):
            urban_loop_route(straight=30.0, corner_radius=18.0)
