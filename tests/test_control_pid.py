"""Tests for repro.control.pid."""

import pytest

from repro.control.pid import PidSpeedController


def simulate(pid, target, steps=600, dt=0.05, drag=0.0):
    """Tiny longitudinal plant: v' = a - drag*v."""
    v = 0.0
    history = []
    for _ in range(steps):
        a = pid.compute_accel(v, target, dt)
        v = max(v + (a - drag * v) * dt, 0.0)
        history.append(v)
    return history


class TestPid:
    def test_converges_to_target(self):
        pid = PidSpeedController()
        v = simulate(pid, target=10.0)
        assert v[-1] == pytest.approx(10.0, abs=0.2)

    def test_no_large_overshoot(self):
        pid = PidSpeedController()
        v = simulate(pid, target=10.0)
        assert max(v) < 11.0

    def test_integral_removes_drag_offset(self):
        pid = PidSpeedController()
        v = simulate(pid, target=10.0, steps=2000, drag=0.05)
        assert v[-1] == pytest.approx(10.0, abs=0.2)

    def test_output_saturated(self):
        pid = PidSpeedController(accel_max=3.0, brake_max=6.0)
        assert pid.compute_accel(0.0, 100.0, 0.05) == 3.0
        pid.reset()
        assert pid.compute_accel(100.0, 0.0, 0.05) == -6.0

    def test_anti_windup_limits_integral(self):
        pid = PidSpeedController(integral_limit=4.0)
        for _ in range(1000):
            pid.compute_accel(0.0, 100.0, 0.05)
        assert abs(pid._integral) <= 4.0

    def test_reset(self):
        pid = PidSpeedController()
        pid.compute_accel(0.0, 10.0, 0.05)
        pid.reset()
        assert pid._integral == 0.0
        assert pid._prev_error is None

    def test_validation(self):
        with pytest.raises(ValueError):
            PidSpeedController(kp=-1.0)
        with pytest.raises(ValueError):
            PidSpeedController(accel_max=0.0)
        with pytest.raises(ValueError):
            PidSpeedController().compute_accel(0.0, 1.0, 0.0)

    def test_derivative_damps(self):
        aggressive = PidSpeedController(kp=3.0, ki=0.0, kd=0.0)
        damped = PidSpeedController(kp=3.0, ki=0.0, kd=0.4)
        overshoot_a = max(simulate(aggressive, 10.0)) - 10.0
        overshoot_d = max(simulate(damped, 10.0)) - 10.0
        assert overshoot_d <= overshoot_a + 1e-9
