"""Tests for the four lateral controllers.

Each controller is exercised in a small perfect-information loop (true
state fed back as the estimate) — convergence there isolates the control
law from estimator effects, which the closed-loop engine tests cover.
"""

import math

import pytest

from repro.control.base import make_lateral_controller
from repro.control.lqr import LqrController
from repro.control.mpc import MpcController
from repro.control.pure_pursuit import PurePursuitController
from repro.control.stanley import StanleyController
from repro.geom.routes import arc_route, straight_route
from repro.geom.vec import Pose, Vec2
from repro.sim.dynamics import KinematicBicycleModel, VehicleParams, VehicleState

CONTROLLERS = ["pure_pursuit", "stanley", "lqr", "mpc"]


def track(controller, route, initial_offset=2.0, speed=8.0, steps=600,
          dt=0.05):
    """Perfect-estimate tracking loop; returns |cte| history.

    Stops a few meters before the route end: the open-route terminal
    behaviour (braking, goal latch) belongs to the follower, not to the
    lateral law under test here.
    """
    max_steps = int((route.length - 10.0) / (speed * dt))
    steps = min(steps, max_steps)
    model = KinematicBicycleModel(VehicleParams(drag_coeff=0.0))
    start, heading = route.start_pose()
    left = Vec2(-math.sin(heading), math.cos(heading))
    state = VehicleState(x=start.x + left.x * initial_offset,
                         y=start.y + left.y * initial_offset,
                         yaw=heading, v=speed)
    controller.reset()
    ctes = []
    for _ in range(steps):
        pose = Pose(Vec2(state.x, state.y), state.yaw)
        decision = controller.compute_steer(pose, state.v, route, dt)
        state = model.step(state, decision.steer, 0.0, dt)
        proj = route.project(Vec2(state.x, state.y))
        ctes.append(abs(proj.cross_track))
    return ctes


class TestFactory:
    @pytest.mark.parametrize("name", CONTROLLERS)
    def test_creates_each(self, name):
        controller = make_lateral_controller(name)
        assert controller.name == name

    def test_unknown_rejected(self):
        with pytest.raises(ValueError, match="unknown lateral controller"):
            make_lateral_controller("nope")

    def test_kwargs_forwarded(self):
        c = make_lateral_controller("pure_pursuit", lookahead_gain=1.5)
        assert c.lookahead_gain == 1.5


@pytest.mark.parametrize("name", CONTROLLERS)
class TestConvergence:
    def test_converges_on_straight(self, name):
        route = straight_route(400.0)
        ctes = track(make_lateral_controller(name), route)
        # Starts offset, ends converged.
        assert ctes[0] > 1.5
        assert max(ctes[-100:]) < 0.3

    def test_no_divergence_on_arc(self, name):
        route = arc_route(radius=40.0, lead_in=40.0, sweep=math.pi)
        ctes = track(make_lateral_controller(name), route,
                     initial_offset=0.0, steps=500)
        assert max(ctes) < 1.0

    def test_steer_decision_fields(self, name):
        route = straight_route(100.0)
        controller = make_lateral_controller(name)
        controller.reset()
        decision = controller.compute_steer(
            Pose(Vec2(10.0, 2.0), 0.0), 8.0, route, 0.05
        )
        assert decision.cte == pytest.approx(2.0, abs=0.05)
        assert abs(decision.steer) <= 0.61 + 1e-9
        assert decision.station == pytest.approx(10.0, abs=1.0)

    def test_corrects_toward_path(self, name):
        # Vehicle left of path -> steer right (negative).
        route = straight_route(100.0)
        controller = make_lateral_controller(name)
        controller.reset()
        decision = controller.compute_steer(
            Pose(Vec2(10.0, 3.0), 0.0), 8.0, route, 0.05
        )
        assert decision.steer < 0.0


class TestPurePursuit:
    def test_lookahead_scales_with_speed(self):
        c = PurePursuitController(lookahead_gain=1.0, min_lookahead=2.0,
                                  max_lookahead=50.0)
        route = straight_route(200.0)
        c.reset()
        slow = c.compute_steer(Pose(Vec2(0, 3), 0.0), 3.0, route, 0.05)
        c.reset()
        fast = c.compute_steer(Pose(Vec2(0, 3), 0.0), 15.0, route, 0.05)
        # Faster -> longer lookahead -> gentler correction.
        assert abs(fast.steer) < abs(slow.steer)

    def test_validation(self):
        with pytest.raises(ValueError):
            PurePursuitController(lookahead_gain=0.0)
        with pytest.raises(ValueError):
            PurePursuitController(min_lookahead=10.0, max_lookahead=5.0)


class TestStanley:
    def test_cross_track_term_sharper_at_low_speed(self):
        c = StanleyController(k_damp=0.0)
        route = straight_route(200.0)
        c.reset()
        slow = c.compute_steer(Pose(Vec2(50, 1.0), 0.0), 2.0, route, 0.05)
        c.reset()
        fast = c.compute_steer(Pose(Vec2(50, 1.0), 0.0), 15.0, route, 0.05)
        assert abs(slow.steer) > abs(fast.steer)

    def test_validation(self):
        with pytest.raises(ValueError):
            StanleyController(k_cte=0.0)
        with pytest.raises(ValueError):
            StanleyController(k_damp=1.0)


class TestLqr:
    def test_gain_cache_reused(self):
        c = LqrController()
        route = straight_route(200.0)
        c.reset()
        c.compute_steer(Pose(Vec2(0, 1), 0.0), 8.0, route, 0.05)
        n = len(c._gain_cache)
        c.compute_steer(Pose(Vec2(1, 1), 0.0), 8.05, route, 0.05)
        assert len(c._gain_cache) == n  # quantized speed hits the cache

    def test_feedforward_on_arc(self):
        c = LqrController()
        route = arc_route(radius=30.0, lead_in=5.0)
        c.reset()
        # On-path, on-heading sample inside the arc: feedforward steers left.
        sample = route.sample(40.0)
        decision = c.compute_steer(Pose(sample.point, sample.heading), 8.0,
                                   route, 0.05)
        assert decision.steer > 0.0

    def test_validation(self):
        with pytest.raises(ValueError):
            LqrController(q_cte=0.0)


class TestMpc:
    def test_validation(self):
        with pytest.raises(ValueError):
            MpcController(horizon=1)
        with pytest.raises(ValueError):
            MpcController(r_steer=0.0)

    def test_respects_steer_bounds(self):
        c = MpcController(max_steer=0.3)
        route = straight_route(100.0)
        c.reset()
        decision = c.compute_steer(Pose(Vec2(0, 8.0), 0.5), 10.0, route, 0.05)
        assert abs(decision.steer) <= 0.3 + 1e-9

    def test_warm_start_reuses_solution(self):
        c = MpcController()
        route = straight_route(100.0)
        c.reset()
        c.compute_steer(Pose(Vec2(0, 1), 0.0), 8.0, route, 0.05)
        assert c._prev_solution is not None
        c.reset()
        assert c._prev_solution is None
