"""Shared helpers for the service test files (server/chaos/smoke)."""

from __future__ import annotations

import contextlib
import dataclasses

from repro.core.checker import check_trace
from repro.service.server import ServerConfig, TraceIngestServer

from conftest import make_trace


@contextlib.asynccontextmanager
async def serving(store_dir, **config_kwargs):
    """A started :class:`TraceIngestServer` on an ephemeral port."""
    config_kwargs.setdefault("shards", 0)
    server = TraceIngestServer(ServerConfig(
        store_dir=str(store_dir), **config_kwargs))
    await server.start()
    try:
        yield server
    finally:
        await server.stop()


def attacked_trace(num_steps: int = 200,
                   window: tuple[int, int] = (80, 140),
                   drift_rate: float = 0.3):
    """Synthetic cruise with a bounded GPS-drift window.

    The window closes (sensors return to nominal), so the incremental
    monitor emits violation episodes mid-stream; the trace still ends
    with fired assertions for the offline verdict to report.
    """
    def mutate(step, record):
        if window[0] <= step < window[1]:
            k = step - window[0]
            drift = drift_rate * k
            return dataclasses.replace(
                record, gps_x=record.gps_x + drift,
                est_x=record.est_x + 0.8 * drift,
                cte_est=0.8 * drift, nis_gps=8.0 + k,
                attack_active=True, attack_name="gps_drift",
                attack_channel="gps")
        return record
    return make_trace(num_steps, mutate=mutate)


def offline_verdict(trace) -> dict:
    """The oracle every service verdict must byte-match."""
    return check_trace(trace).to_dict()
