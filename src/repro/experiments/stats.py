"""Campaign instrumentation: phase timings, cache accounting, utilization.

The grid runner reports one :class:`GridStats` per :func:`~repro.experiments.runner.run_grid`
call; the module-level :class:`StatsCollector` accumulates them across an
entire CLI invocation so ``adassure experiment all --stats`` can print a
single campaign summary and dump it machine-readably (``BENCH_runner.json``).

Phases are the three stages every grid point goes through:

* ``simulate`` — the closed-loop run (dominates; this is what the cache
  and the worker pool exist to amortize),
* ``check``    — assertion catalog over the trace,
* ``diagnose`` — root-cause ranking from the report.

Phase times are summed across workers, so on an N-worker pool the busy
time can exceed the wall time; ``worker_utilization`` is busy/(wall × N).

Run ``python -m repro.experiments.stats`` to benchmark the runner itself
(cold serial vs. cold parallel vs. warm cache on the E1 grid) and write
``BENCH_runner.json``.
"""

from __future__ import annotations

import json
import os
import platform
from dataclasses import dataclass, field
from pathlib import Path

__all__ = ["PHASES", "GridStats", "StatsCollector", "STATS"]

PHASES = ("simulate", "check", "diagnose")


@dataclass(slots=True)
class GridStats:
    """Everything one ``run_grid`` call measured about itself."""

    grid_points: int = 0
    executed: int = 0
    """Points actually simulated (grid_points - all cache hits)."""
    memo_hits: int = 0
    disk_hits: int = 0
    disk_errors: int = 0
    retries: int = 0
    """Point re-executions after a failure or timeout."""
    timeouts: int = 0
    """Points whose pool execution exceeded the wall-clock budget."""
    pool_failures: int = 0
    """Worker-pool collapses (``BrokenProcessPool``) recovered serially."""
    quarantined: list = field(default_factory=list)
    """Points that kept failing after every retry: ``(point, error)``."""
    workers: int = 1
    chunk_size: int = 1
    """Points batched per pool task (1 = unchunked / serial)."""
    sim_engine: str = "serial"
    """Simulation engine the uncached points went through."""
    batch_groups: int = 0
    """Compatible groups stepped in lockstep by the batch engine."""
    batch_points: int = 0
    """Points simulated inside those batched groups."""
    batch_fallbacks: int = 0
    """Groups the batch engine rejected back to the serial/pool path."""
    sim_engine_reason: str = ""
    """Why that engine was chosen: explicit, env, or the auto heuristic."""
    planned: int = 0
    """Off-grid runs declared to a :class:`~repro.experiments.plan.ProbePlan`."""
    plan_batched: int = 0
    """Planned runs simulated inside batch-engine lane groups."""
    plan_fallbacks: int = 0
    """Planned groups the batch engine rejected back to serial execution."""
    speculative_issued: int = 0
    """Probe lanes simulated ahead of need by speculative prefetch."""
    speculative_wasted: int = 0
    """Speculative lanes the search never consumed (issued - used)."""
    dare_memo_hits: int = 0
    """Cross-call LQR DARE gain lookups served from the module memo."""
    dare_memo_solves: int = 0
    """DARE solves the module memo could not avoid."""
    pool_policy: str = "serial"
    """How the classic executor ran: pool, serial, serial-single-core,
    distributed."""
    executor: str = "local"
    """Executor chain that ran the misses: local or distributed."""
    dist_workers: int = 0
    """Worker processes spawned by the distributed executor."""
    dist_points: int = 0
    """Points executed by distributed workers and adopted from the
    shared result store (not re-executed locally)."""
    shards_total: int = 0
    """Lease-claimable shards the grid was striped into."""
    shards_claimed: int = 0
    """Shard claims across the whole fleet (>= shards_total when shards
    were reclaimed after a worker death)."""
    shards_reclaimed: int = 0
    """Shards re-claimed after their previous owner's lease went stale."""
    heartbeats: int = 0
    """Lease heartbeat renewals sent by distributed workers."""
    lease_conflicts: int = 0
    """Checkpoint manifests that went read-only because another live
    campaign holds the grid's lease (the work still ran; only the
    shared ledger was left to its owner)."""
    wall_time: float = 0.0
    phase_time: dict = field(default_factory=lambda: dict.fromkeys(PHASES, 0.0))
    """Per-phase busy seconds, summed over workers."""

    @property
    def busy_time(self) -> float:
        return sum(self.phase_time.values())

    @property
    def worker_utilization(self) -> float:
        """Fraction of the pool's wall-clock capacity spent computing."""
        if self.wall_time <= 0.0 or self.workers <= 0:
            return 0.0
        return min(self.busy_time / (self.wall_time * self.workers), 1.0)

    @property
    def cache_hit_rate(self) -> float:
        if self.grid_points == 0:
            return 0.0
        return (self.memo_hits + self.disk_hits) / self.grid_points

    def merge(self, other: "GridStats") -> None:
        self.grid_points += other.grid_points
        self.executed += other.executed
        self.memo_hits += other.memo_hits
        self.disk_hits += other.disk_hits
        self.disk_errors += other.disk_errors
        self.retries += other.retries
        self.timeouts += other.timeouts
        self.pool_failures += other.pool_failures
        self.quarantined.extend(other.quarantined)
        self.workers = max(self.workers, other.workers)
        self.chunk_size = max(self.chunk_size, other.chunk_size)
        if other.sim_engine != "serial":
            self.sim_engine = other.sim_engine
        self.batch_groups += other.batch_groups
        self.batch_points += other.batch_points
        self.batch_fallbacks += other.batch_fallbacks
        if other.sim_engine_reason:
            self.sim_engine_reason = other.sim_engine_reason
        self.planned += other.planned
        self.plan_batched += other.plan_batched
        self.plan_fallbacks += other.plan_fallbacks
        self.speculative_issued += other.speculative_issued
        self.speculative_wasted += other.speculative_wasted
        self.dare_memo_hits += other.dare_memo_hits
        self.dare_memo_solves += other.dare_memo_solves
        if other.pool_policy != "serial":
            self.pool_policy = other.pool_policy
        if other.executor != "local":
            self.executor = other.executor
        self.dist_workers = max(self.dist_workers, other.dist_workers)
        self.dist_points += other.dist_points
        self.shards_total += other.shards_total
        self.shards_claimed += other.shards_claimed
        self.shards_reclaimed += other.shards_reclaimed
        self.heartbeats += other.heartbeats
        self.lease_conflicts += other.lease_conflicts
        self.wall_time += other.wall_time
        for phase in PHASES:
            self.phase_time[phase] += other.phase_time.get(phase, 0.0)

    def as_dict(self) -> dict:
        return {
            "grid_points": self.grid_points,
            "executed": self.executed,
            "memo_hits": self.memo_hits,
            "disk_hits": self.disk_hits,
            "disk_errors": self.disk_errors,
            "retries": self.retries,
            "timeouts": self.timeouts,
            "pool_failures": self.pool_failures,
            "quarantined": [
                {"point": list(point), "error": error}
                for point, error in self.quarantined
            ],
            "cache_hit_rate": round(self.cache_hit_rate, 4),
            "workers": self.workers,
            "chunk_size": self.chunk_size,
            "sim_engine": self.sim_engine,
            "batch_groups": self.batch_groups,
            "batch_points": self.batch_points,
            "batch_fallbacks": self.batch_fallbacks,
            "sim_engine_reason": self.sim_engine_reason,
            "planned": self.planned,
            "plan_batched": self.plan_batched,
            "plan_fallbacks": self.plan_fallbacks,
            "speculative_issued": self.speculative_issued,
            "speculative_wasted": self.speculative_wasted,
            "dare_memo_hits": self.dare_memo_hits,
            "dare_memo_solves": self.dare_memo_solves,
            "pool_policy": self.pool_policy,
            "executor": self.executor,
            "dist_workers": self.dist_workers,
            "dist_points": self.dist_points,
            "shards_total": self.shards_total,
            "shards_claimed": self.shards_claimed,
            "shards_reclaimed": self.shards_reclaimed,
            "heartbeats": self.heartbeats,
            "lease_conflicts": self.lease_conflicts,
            "wall_time_s": round(self.wall_time, 4),
            "busy_time_s": round(self.busy_time, 4),
            "worker_utilization": round(self.worker_utilization, 4),
            "phase_time_s": {p: round(t, 4)
                             for p, t in self.phase_time.items()},
        }

    def render(self, title: str = "grid runner stats") -> str:
        lines = [
            f"-- {title} --",
            f"grid points : {self.grid_points}  "
            f"(executed {self.executed}, memo hits {self.memo_hits}, "
            f"disk hits {self.disk_hits}, disk errors {self.disk_errors})",
            f"cache hit   : {100.0 * self.cache_hit_rate:.1f}%",
            f"workers     : {self.workers}  "
            f"(chunk {self.chunk_size})  "
            f"utilization {100.0 * self.worker_utilization:.1f}%",
            f"engine      : {self.sim_engine}  "
            f"(pool policy {self.pool_policy}"
            + (f"; {self.sim_engine_reason}" if self.sim_engine_reason
               else "") + ")",
            f"wall time   : {self.wall_time:.2f}s  "
            f"(busy {self.busy_time:.2f}s)",
        ]
        for phase in PHASES:
            lines.append(f"  {phase:<9}: {self.phase_time[phase]:.2f}s")
        if self.batch_groups or self.batch_fallbacks:
            lines.append(
                f"batched     : {self.batch_points} point(s) in "
                f"{self.batch_groups} group(s), "
                f"{self.batch_fallbacks} fallback(s)"
            )
        if self.planned or self.plan_fallbacks:
            lines.append(
                f"planned     : {self.planned} run(s) declared, "
                f"{self.plan_batched} batched, "
                f"{self.plan_fallbacks} group fallback(s)"
            )
        if self.speculative_issued or self.speculative_wasted:
            lines.append(
                f"speculative : {self.speculative_issued} lane(s) issued, "
                f"{self.speculative_wasted} wasted"
            )
        if self.dare_memo_hits or self.dare_memo_solves:
            lines.append(
                f"dare memo   : {self.dare_memo_hits} hit(s), "
                f"{self.dare_memo_solves} solve(s)"
            )
        if self.executor == "distributed" or self.shards_total:
            lines.append(
                f"distributed : {self.dist_points} point(s) adopted from "
                f"{self.dist_workers} worker(s); "
                f"{self.shards_claimed} claim(s) over "
                f"{self.shards_total} shard(s), "
                f"{self.shards_reclaimed} reclaimed, "
                f"{self.heartbeats} heartbeat(s)"
            )
        if self.retries or self.timeouts or self.pool_failures:
            lines.append(
                f"recovered   : {self.retries} retrie(s), "
                f"{self.timeouts} timeout(s), "
                f"{self.pool_failures} pool failure(s)"
            )
        if self.lease_conflicts:
            lines.append(
                f"lease       : {self.lease_conflicts} manifest(s) "
                "read-only (another live campaign owns the ledger)"
            )
        if self.quarantined:
            lines.append(f"quarantined : {len(self.quarantined)} point(s)")
            for point, error in self.quarantined:
                lines.append(f"  {point}: {error}")
        return "\n".join(lines)


class StatsCollector:
    """Accumulates :class:`GridStats` across many ``run_grid`` calls."""

    def __init__(self) -> None:
        self.total = GridStats()
        self.grids = 0
        self.last: GridStats | None = None

    def record(self, stats: GridStats) -> None:
        self.total.merge(stats)
        self.grids += 1
        self.last = stats

    def reset(self) -> None:
        self.__init__()

    def as_dict(self) -> dict:
        return {"grids": self.grids, **self.total.as_dict()}

    def render(self) -> str:
        return self.total.render(
            title=f"campaign stats ({self.grids} grid call(s))"
        )

    def write_json(self, path: str | Path, extra: dict | None = None) -> Path:
        path = Path(path)
        payload = {"host": _host_info(), "campaign": self.as_dict()}
        if extra:
            payload.update(extra)
        path.write_text(json.dumps(payload, indent=2) + "\n",
                        encoding="utf-8")
        return path


STATS = StatsCollector()
"""Process-wide collector the runner reports into."""


def _host_info() -> dict:
    return {
        "python": platform.python_version(),
        "machine": platform.machine(),
        "cpu_count": os.cpu_count(),
    }


def _bench_main(argv: list[str] | None = None) -> int:
    """Benchmark the grid runner; writes ``BENCH_runner.json``.

    Measures the E1 detection-matrix grid (quick config) four ways:
    cold serial, cold ``workers=4``, warm disk cache (fresh process
    memo), and warm in-process memo.
    """
    import argparse
    import tempfile
    import time

    parser = argparse.ArgumentParser(
        prog="python -m repro.experiments.stats",
        description=_bench_main.__doc__,
    )
    parser.add_argument("--output", default="BENCH_runner.json")
    parser.add_argument("--workers", type=int, default=4,
                        help="parallel worker count to benchmark (default 4)")
    parser.add_argument("--no-campaign", action="store_true",
                        help="skip the cold/warm `experiment all --quick` "
                             "measurement (~2 min)")
    args = parser.parse_args(argv)

    from repro.experiments.config import ExperimentConfig
    from repro.experiments.runner import clear_cache, run_grid

    config = ExperimentConfig.quick()
    grid = dict(
        scenarios=(config.scenario,),
        controllers=("pure_pursuit",),
        attacks=("none",) + tuple(config.attacks),
        seeds=(1, 7),
        onset=config.attack_onset,
        duration=config.duration,
    )

    timings: dict[str, float] = {}
    old_dir = os.environ.get("ADASSURE_CACHE_DIR")
    with tempfile.TemporaryDirectory(prefix="adassure-bench-") as tmp:
        os.environ["ADASSURE_CACHE_DIR"] = tmp
        try:
            def measure(label: str, workers: int,
                        clear: str | None = "all") -> None:
                if clear == "all":
                    clear_cache(disk=True)
                elif clear == "memo":
                    clear_cache(disk=False)
                t0 = time.perf_counter()
                run_grid(workers=workers, **grid)
                timings[label] = time.perf_counter() - t0
                print(f"{label:<22} {timings[label]:8.2f}s")

            measure("cold_serial", 1, clear="all")
            measure("cold_parallel", args.workers, clear="all")
            # Disk layer is warm from the parallel pass; drop only the memo.
            measure("warm_disk", 1, clear="memo")
            measure("warm_memo", 1, clear=None)

            if not args.no_campaign:
                # End-to-end: the full quick campaign, cold then warm disk.
                import contextlib
                import io as _io

                from repro.cli import main as cli_main

                def campaign(label: str, clear: str) -> None:
                    clear_cache(disk=(clear == "all"))
                    t0 = time.perf_counter()
                    with contextlib.redirect_stdout(_io.StringIO()):
                        cli_main(["experiment", "all", "--quick"])
                    timings[label] = time.perf_counter() - t0
                    print(f"{label:<22} {timings[label]:8.2f}s")

                campaign("campaign_cold", clear="all")
                campaign("campaign_warm_disk", clear="memo")
        finally:
            if old_dir is None:
                os.environ.pop("ADASSURE_CACHE_DIR", None)
            else:
                os.environ["ADASSURE_CACHE_DIR"] = old_dir

    grid_size = (len(grid["scenarios"]) * len(grid["controllers"])
                 * len(grid["attacks"]) * len(grid["seeds"]))
    out = Path(args.output)
    payload = {
        "host": _host_info(),
        "grid": {k: list(v) if isinstance(v, tuple) else v
                 for k, v in grid.items()} | {"points": grid_size},
        "parallel_workers": args.workers,
        "chunk_size": STATS.total.chunk_size,
        "timings_s": {k: round(v, 4) for k, v in timings.items()},
        "speedups": {
            "parallel_vs_serial_cold": round(
                timings["cold_serial"] / timings["cold_parallel"], 2),
            "warm_disk_vs_cold": round(
                timings["cold_serial"] / timings["warm_disk"], 2),
            "warm_memo_vs_cold": round(
                timings["cold_serial"] / max(timings["warm_memo"], 1e-9), 2),
        },
    }
    if "campaign_cold" in timings:
        payload["speedups"]["campaign_warm_vs_cold"] = round(
            timings["campaign_cold"] / timings["campaign_warm_disk"], 2)
    if (os.cpu_count() or 1) < 2:
        payload["note"] = (
            "host exposes a single CPU: the parallel pass measures pool "
            "overhead only; parallel_vs_serial_cold needs >= 2 cores to "
            "exceed 1.0"
        )
    out.write_text(json.dumps(payload, indent=2) + "\n", encoding="utf-8")
    print(f"wrote {out}")
    return 0


if __name__ == "__main__":
    raise SystemExit(_bench_main())
