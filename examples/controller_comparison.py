"""Controller robustness comparison under a GPS spoofing attack.

Runs all four lateral controllers on the s-curve, nominally and under the
GPS drift spoof, and compares tracking quality — showing that the shared
state estimator (not the control law) dominates attack vulnerability,
which is why ADAssure debugs the whole loop.

Run:  python examples/controller_comparison.py
"""

from repro import run_scenario, standard_attack, standard_scenarios

CONTROLLERS = ["pure_pursuit", "stanley", "lqr", "mpc"]


def main() -> None:
    scenario = standard_scenarios(seed=7)["s_curve"]
    print(f"scenario: {scenario.name}, attack: gps_drift at t=15 s\n")
    header = (f"{'controller':<13} {'condition':<9} {'mean|cte|':>10} "
              f"{'max|cte|':>9} {'steer rms':>10} {'goal':>6}")
    print(header)
    print("-" * len(header))

    for controller in CONTROLLERS:
        for label, campaign in (
            ("nominal", standard_attack("none")),
            ("attacked", standard_attack("gps_drift", onset=15.0)),
        ):
            result = run_scenario(scenario, controller=controller,
                                  campaign=campaign)
            m = result.metrics
            print(f"{controller:<13} {label:<9} {m.mean_abs_cte:>9.2f}m "
                  f"{m.max_abs_cte:>8.2f}m {m.steer_rms:>9.3f} "
                  f"{'yes' if m.goal_reached else 'no':>6}")
        print()

    print("observation: every controller tracks well nominally and every "
          "controller is dragged off the lane by the same spoofed estimate "
          "- the attack must be caught at the sensor-consistency level.")


if __name__ == "__main__":
    main()
