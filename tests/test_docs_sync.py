"""Documentation/code consistency checks.

Docs that drift from the code are worse than no docs; these tests pin the
reference documents to the registries they describe.
"""

from pathlib import Path

import pytest

from repro.attacks.campaign import ATTACK_CLASSES
from repro.cli import build_parser
from repro.core.catalog import CATALOG_IDS, make_assertion
from repro.experiments import ALL_EXPERIMENTS

ROOT = Path(__file__).resolve().parent.parent


@pytest.fixture(scope="module")
def catalog_doc() -> str:
    return (ROOT / "docs" / "assertion_catalog.md").read_text(encoding="utf-8")


@pytest.fixture(scope="module")
def readme() -> str:
    return (ROOT / "README.md").read_text(encoding="utf-8")


class TestCatalogDoc:
    def test_every_assertion_documented(self, catalog_doc):
        for aid in CATALOG_IDS:
            assert f"| {aid} |" in catalog_doc, f"{aid} missing from docs"

    def test_no_phantom_assertions(self, catalog_doc):
        import re

        documented = set(re.findall(r"^\| (A\d+[GSC]?) \|", catalog_doc,
                                    flags=re.M))
        assert documented == set(CATALOG_IDS)

    def test_families_match_code(self, catalog_doc):
        for aid in CATALOG_IDS:
            assertion = make_assertion(aid)
            row = next(line for line in catalog_doc.splitlines()
                       if line.startswith(f"| {aid} |"))
            assert f"| {assertion.category} |" in row, (
                f"{aid}: doc family disagrees with code "
                f"({assertion.category!r})"
            )


class TestReadme:
    def test_catalog_size_current(self, readme):
        assert f"a {len(CATALOG_IDS)}-assertion catalog" in readme

    def test_examples_listed_exist(self, readme):
        for line in readme.splitlines():
            if line.startswith("| `") and line.endswith("|") and ".py" in line:
                name = line.split("`")[1]
                assert (ROOT / "examples" / name).exists(), name

    def test_every_example_listed(self, readme):
        for path in (ROOT / "examples").glob("*.py"):
            assert path.name in readme, f"{path.name} missing from README"


class TestExperimentsDoc:
    def test_every_experiment_in_experiments_md(self):
        text = (ROOT / "EXPERIMENTS.md").read_text(encoding="utf-8")
        for exp_id in ALL_EXPERIMENTS:
            assert exp_id.upper() in text, f"{exp_id} missing"

    def test_every_experiment_has_bench(self):
        benches = {p.name for p in (ROOT / "benchmarks").glob("bench_*.py")}
        for exp_id in ALL_EXPERIMENTS:
            assert any(b.startswith(f"bench_{exp_id}_") for b in benches), (
                f"no bench for {exp_id}: {sorted(benches)}"
            )


class TestCliSurface:
    def test_attack_choices_match_registry(self):
        parser = build_parser()
        # Find the run subparser's --attack choices.
        run_parser = parser._subparsers._group_actions[0].choices["run"]
        attack_action = next(a for a in run_parser._actions
                             if a.dest == "attack")
        assert set(attack_action.choices) == {"none"} | set(ATTACK_CLASSES)

    def test_explain_defaults_match_module_constants(self):
        from repro.experiments.counterfactual import (
            DEFAULT_BUDGET,
            DEFAULT_RESOLUTION,
        )

        parser = build_parser()
        explain = parser._subparsers._group_actions[0].choices["explain"]
        actions = {a.dest: a for a in explain._actions}
        assert actions["budget"].default == DEFAULT_BUDGET
        assert actions["resolution"].default == DEFAULT_RESOLUTION
        assert set(actions["sim_engine"].choices) == {"serial", "batch"}
        # Same controller universe as `run`.
        run_parser = parser._subparsers._group_actions[0].choices["run"]
        run_controllers = next(a for a in run_parser._actions
                               if a.dest == "controller").choices
        assert actions["controller"].choices == run_controllers


class TestCounterfactualDoc:
    @pytest.fixture(scope="class")
    def doc(self) -> str:
        return (ROOT / "docs" / "counterfactual.md").read_text(
            encoding="utf-8")

    def test_budget_default_current(self, doc):
        from repro.experiments.counterfactual import DEFAULT_BUDGET

        assert f"default {DEFAULT_BUDGET}" in doc

    def test_search_cores_documented(self, doc):
        for core in ("ddmin_interval", "ddmin_subset", "bisect_intensity"):
            assert core in doc, f"{core} missing from docs/counterfactual.md"

    def test_cross_links_resolve(self, doc, readme):
        # README and the doc must point at each other's surfaces.
        assert "docs/counterfactual.md" in readme
        assert "adassure explain" in readme
        for test_file in ("tests/test_counterfactual.py",
                          "tests/test_counterfactual_exact.py"):
            assert (ROOT / test_file).exists()
            assert test_file in doc

    def test_design_mentions_module(self):
        design = (ROOT / "DESIGN.md").read_text(encoding="utf-8")
        assert "counterfactual.py" in design
        assert "docs/counterfactual.md" in design

    def test_round_batching_documented(self, doc):
        # The speculative-prefetch layer and its accounting counters.
        assert "Round-batched speculation" in doc
        for counter in ("speculative_issued", "speculative_wasted",
                        "batch_groups", "dare_memo_hits"):
            assert counter in doc, f"{counter} missing from docs"
        assert "BENCH_probes.json" in doc
        assert "planner.md" in doc


class TestPlannerDoc:
    @pytest.fixture(scope="class")
    def doc(self) -> str:
        return (ROOT / "docs" / "planner.md").read_text(encoding="utf-8")

    def test_api_surface_documented(self, doc):
        from repro.experiments import plan

        for name in ("ProbePlan", "scenario_lane", "PlannedRun"):
            assert hasattr(plan, name), f"plan.{name} gone but documented"
            assert name in doc, f"{name} missing from docs/planner.md"
        assert hasattr(plan.ProbePlan, "plan_scored")
        assert "plan_scored" in doc

    def test_counters_documented(self, doc):
        for counter in ("planned", "plan_batched", "plan_fallbacks",
                        "dare_memo_hits", "dare_memo_solves"):
            assert counter in doc, f"{counter} missing from docs/planner.md"

    def test_cross_links_resolve(self, doc, readme):
        assert "docs/planner.md" in readme
        assert "counterfactual.md" in doc
        assert (ROOT / "tests" / "test_probe_batching.py").exists()
        assert "tests/test_probe_batching.py" in doc
        design = (ROOT / "DESIGN.md").read_text(encoding="utf-8")
        assert "plan.py" in design
        assert "docs/planner.md" in design
