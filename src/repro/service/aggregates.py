"""Fleet-level aggregates over completed monitoring sessions.

The debugging workflows the service feeds (the paper's E-series
experiments, a fleet operator's dashboard) care about population
statistics, not individual verdicts:

* **per-cause violation rates** — of all completed sessions, how many
  were diagnosed with each root cause (the knowledge-base causes of
  :mod:`repro.core.diagnosis`), and how many fired no assertion at all;
* **detection latency percentiles** — for sessions with a known attack
  onset, how long the catalog took to first fire (p50/p90/p99);
* **verdict latency percentiles** — service-side: FINISH received to
  verdict issued, the number the load benchmark tracks as its SLO.

Everything is computed from bounded state: counters plus capped sample
reservoirs, so a server that has absorbed a million sessions answers a
STATUS request in microseconds without having kept a million reports.
"""

from __future__ import annotations

from collections import Counter

__all__ = ["FleetAggregates", "percentile"]

_MAX_SAMPLES = 10_000
"""Per-metric cap on retained latency samples (drop-oldest ring)."""


def percentile(samples: list[float], q: float) -> float | None:
    """The q-th percentile (0..100) by linear interpolation, or ``None``.

    Small, dependency-free and exact for our sample sizes; matches
    ``numpy.percentile``'s default (linear) method.
    """
    if not samples:
        return None
    if not 0.0 <= q <= 100.0:
        raise ValueError(f"percentile must be in [0, 100], got {q}")
    ordered = sorted(samples)
    if len(ordered) == 1:
        return ordered[0]
    rank = (q / 100.0) * (len(ordered) - 1)
    lo = int(rank)
    hi = min(lo + 1, len(ordered) - 1)
    frac = rank - lo
    return ordered[lo] * (1.0 - frac) + ordered[hi] * frac


class _Reservoir:
    """Bounded sample buffer: keeps the most recent ``cap`` values."""

    __slots__ = ("cap", "values", "seen")

    def __init__(self, cap: int = _MAX_SAMPLES):
        self.cap = cap
        self.values: list[float] = []
        self.seen = 0

    def add(self, value: float) -> None:
        self.seen += 1
        self.values.append(value)
        if len(self.values) > self.cap:
            del self.values[: len(self.values) - self.cap]

    def summary(self) -> dict:
        return {
            "n": self.seen,
            "p50": percentile(self.values, 50.0),
            "p90": percentile(self.values, 90.0),
            "p99": percentile(self.values, 99.0),
            "max": max(self.values) if self.values else None,
        }


class FleetAggregates:
    """Rolling statistics over every session this server completed."""

    def __init__(self) -> None:
        self.sessions_completed = 0
        self.sessions_violating = 0
        self.records_ingested = 0
        self.cause_counts: Counter[str] = Counter()
        self.detection_latency = _Reservoir()
        self.verdict_latency = _Reservoir()

    def record_session(self, verdict: dict,
                       verdict_latency_s: float | None = None) -> None:
        """Fold one completed session's verdict into the fleet view.

        ``verdict`` is the :func:`~repro.service.session.score_trace_bytes`
        dict (also what checkpoints store), so resumed-and-replayed
        verdicts aggregate identically to freshly computed ones.
        """
        self.sessions_completed += 1
        self.records_ingested += int(verdict.get("n_records", 0))
        if verdict.get("any_fired"):
            self.sessions_violating += 1
            cause = verdict.get("top_cause") or "undiagnosed"
        else:
            cause = "clean"
        self.cause_counts[cause] += 1
        latency = verdict.get("detection_latency")
        if latency is not None:
            self.detection_latency.add(float(latency))
        if verdict_latency_s is not None:
            self.verdict_latency.add(float(verdict_latency_s))

    def as_dict(self) -> dict:
        total = self.sessions_completed
        return {
            "sessions_completed": total,
            "sessions_violating": self.sessions_violating,
            "violation_rate": (self.sessions_violating / total
                               if total else 0.0),
            "records_ingested": self.records_ingested,
            "per_cause": {
                cause: {"sessions": count,
                        "rate": count / total if total else 0.0}
                for cause, count in sorted(self.cause_counts.items())
            },
            "detection_latency_s": self.detection_latency.summary(),
            "verdict_latency_s": self.verdict_latency.summary(),
        }

    def render(self) -> str:
        d = self.as_dict()
        lines = [
            "-- fleet aggregates --",
            f"sessions  : {d['sessions_completed']}  "
            f"(violating {d['sessions_violating']}, "
            f"rate {100.0 * d['violation_rate']:.1f}%)",
            f"records   : {d['records_ingested']}",
        ]
        for cause, row in d["per_cause"].items():
            lines.append(f"  cause {cause:<16}: {row['sessions']} "
                         f"({100.0 * row['rate']:.1f}%)")
        det = d["detection_latency_s"]
        if det["n"]:
            lines.append(
                f"detection : p50 {det['p50']:.2f}s  p90 {det['p90']:.2f}s  "
                f"p99 {det['p99']:.2f}s  (n={det['n']})")
        ver = d["verdict_latency_s"]
        if ver["n"]:
            lines.append(
                f"verdict   : p50 {1e3 * ver['p50']:.1f}ms  "
                f"p99 {1e3 * ver['p99']:.1f}ms  (n={ver['n']})")
        return "\n".join(lines)
