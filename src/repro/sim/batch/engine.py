"""The batched simulation engine: N grid points stepped as arrays.

:func:`run_batch` executes many compatible runs (same route, dt, duration,
model and lead config — everything else may vary per lane) in one
struct-of-arrays loop and returns the same :class:`~repro.sim.engine.
RunResult` list the serial :class:`~repro.sim.engine.SimulationRunner`
would produce, **bit-identically**.  The serial runner is the oracle: every
expression here mirrors ``engine.py`` in association order, builtin
``min``/``max`` semantics and libm usage (see :mod:`repro.sim.batch.ops`).

Three lane tiers share the loop:

* *vector lanes* — plain :class:`~repro.control.follower.WaypointFollower`
  with a ``supports_batch`` lateral controller: control fully vectorized.
* *object-controller lanes* — stateful followers (MPC, supervised): the
  real ``decide()`` runs per lane on a scalar ``Estimate`` view.
* *injected lanes* — lanes with fault/attack injectors (or a supervisor)
  materialize per-step reading objects, run the exact serial injection
  chain, and write the results back into the arrays.

A lane the serial engine would crash on (NaN-poisoned state) raises out of
the whole batch; callers are expected to fall back to serial execution so
the per-lane behaviour — including the crash — is preserved.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import TYPE_CHECKING

import numpy as np

from repro.control.estimator import EkfConfig, Estimate
from repro.control.supervisor import SupervisedController
from repro.geom.vec import Vec2
from repro.sim.batch import ops
from repro.sim.batch.controllers import BatchFollower, is_vectorizable
from repro.sim.batch.dynamics import BatchVehicle
from repro.sim.batch.ekf import BatchEkf
from repro.sim.batch.noise import build_lane_tapes
from repro.sim.batch.route import BatchRoute
from repro.sim.engine import RunResult
from repro.sim.lead import LeadVehicle
from repro.sim.rng import RngStreams
from repro.sim.scenario import Scenario, ScenarioOutcome
from repro.sim.sensors.compass import CompassReading
from repro.sim.sensors.gps import GpsFix
from repro.sim.sensors.imu import ImuReading
from repro.sim.sensors.odometry import OdometryReading
from repro.sim.sensors.radar import Radar, RadarConfig
from repro.trace.metrics import compute_metrics
from repro.trace.schema import Trace, TraceMeta

if TYPE_CHECKING:  # annotation-only import; repro.attacks imports repro.sim
    from repro.attacks.campaign import AttackCampaign
    from repro.faults.campaign import FaultCampaign

__all__ = ["LaneSpec", "BatchCompatError", "run_batch"]

_DIVERGENCE_CTE = 30.0  # keep in sync with repro.sim.engine


class BatchCompatError(ValueError):
    """Lanes cannot share a batch (route/dt/duration/model/lead differ)."""


@dataclass(slots=True)
class LaneSpec:
    """One run of the batch: the same inputs SimulationRunner takes."""

    scenario: Scenario
    follower: object
    campaign: AttackCampaign | None = None
    ekf_config: EkfConfig | None = None
    faults: FaultCampaign | None = None


_FLOAT_COLS = (
    "true_x", "true_y", "true_yaw", "true_v", "true_yaw_rate", "true_accel",
    "true_lat_accel", "cte_true", "heading_err_true", "station_true",
    "dist_to_goal", "gps_x", "gps_y", "imu_yaw_rate", "imu_accel",
    "odom_speed", "compass_yaw", "radar_range", "radar_range_rate",
    "gap_true", "lead_speed", "est_x", "est_y", "est_yaw", "est_v",
    "est_cov_trace", "nis_gps", "nis_speed", "nis_compass", "cte_est",
    "heading_err_est", "station_est", "target_speed", "steer_cmd",
    "accel_cmd", "steer_applied", "accel_applied",
)
_BOOL_COLS = (
    "gps_fresh", "imu_fresh", "odom_fresh", "compass_fresh", "radar_fresh",
    "lead_present", "attack_active", "fault_active",
)
_STRING_COLS = (
    "attack_name", "attack_channel", "fault_name", "fault_channel",
    "supervisor_mode",
)


def _check_compat(lanes: "list[LaneSpec]") -> None:
    base = lanes[0].scenario
    for spec in lanes[1:]:
        s = spec.scenario
        if s.dt != base.dt or s.num_steps != base.num_steps:
            raise BatchCompatError("lanes must share dt and duration")
        if s.model != base.model:
            raise BatchCompatError("lanes must share the dynamics model")
        if s.lead != base.lead:
            raise BatchCompatError("lanes must share the lead-vehicle config")
        if s.route is not base.route:
            if s.route.closed != base.route.closed:
                raise BatchCompatError("lanes must share route topology")
            a = np.array([[p.x, p.y] for p in s.route.points])
            b = np.array([[p.x, p.y] for p in base.route.points])
            if a.shape != b.shape or not np.array_equal(a, b):
                raise BatchCompatError("lanes must share route geometry")


@dataclass
class _Lane:
    """Per-lane serial-side objects the array loop can't absorb."""

    spec: LaneSpec
    campaign: AttackCampaign
    faults: FaultCampaign
    injectors: list = field(default_factory=list)
    supervisor: SupervisedController | None = None
    radar: Radar | None = None


def _apply_channel(injectors: list, channel: str, t: float, value, hook):
    """Replica of ``SimulationRunner._apply_channel`` for one lane."""
    if value is None:
        return None
    for injector in injectors:
        if injector.channel != channel:
            continue
        injector.observe(t, value)
        if injector.active(t):
            value = hook(injector, value)
            if value is None:
                return None
    return value


def run_batch(lane_specs: "list[LaneSpec]") -> "list[RunResult]":
    """Run every lane to completion in lockstep; serial-bit-exact results."""
    from repro.attacks.campaign import AttackCampaign
    from repro.faults.campaign import FaultCampaign

    if not lane_specs:
        return []
    _check_compat(lane_specs)
    base = lane_specs[0].scenario
    route = base.route
    dt = base.dt
    n_steps = base.num_steps
    n = len(lane_specs)
    broute = BatchRoute(route)
    has_lead = base.lead is not None
    lead = LeadVehicle(base.lead, start_station=0.0) if has_lead else None

    # --- per-lane setup (mirrors SimulationRunner.run preamble) --------
    lanes: list[_Lane] = []
    tapes = []
    for spec in lane_specs:
        s = spec.scenario
        campaign = spec.campaign or AttackCampaign.none()
        faults = spec.faults or FaultCampaign.none()
        rngs = RngStreams(s.seed)
        tapes.append(build_lane_tapes(s.sensors, rngs, dt, n_steps))
        spec.follower.reset()
        campaign.reset()
        faults.reset()
        for index, attack in enumerate(campaign.attacks):
            attack.bind_rng(rngs.stream(f"attack.{index}.{attack.name}"))
        for index, fault in enumerate(faults.faults):
            fault.bind_rng(rngs.stream(f"fault.{index}.{fault.name}"))
        lane = _Lane(
            spec=spec,
            campaign=campaign,
            faults=faults,
            injectors=list(faults.faults) + list(campaign.attacks),
            supervisor=(spec.follower
                        if isinstance(spec.follower, SupervisedController)
                        else None),
            radar=(Radar(RadarConfig(), rngs.stream("sensor.radar"))
                   if has_lead else None),
        )
        lanes.append(lane)

    shim_ids = [i for i, ln in enumerate(lanes)
                if ln.injectors or ln.supervisor is not None]
    vector_ids = [i for i, ln in enumerate(lanes)
                  if is_vectorizable(ln.spec.follower)]
    object_ids = [i for i in range(n) if i not in set(vector_ids)]
    vec = np.array(vector_ids, dtype=np.int64)
    bfollower = (
        BatchFollower([lanes[i].spec.follower for i in vector_ids], broute)
        if vector_ids else None
    )

    # --- spawn (exact serial per-lane scalar arithmetic) ---------------
    start_point, start_heading = route.start_pose()
    x0 = np.empty(n)
    y0 = np.empty(n)
    for i, spec in enumerate(lane_specs):
        offset = spec.scenario.initial_lateral_offset
        point = start_point
        if offset != 0.0:
            left = Vec2(-math.sin(start_heading), math.cos(start_heading))
            point = start_point + left * offset
        x0[i] = point.x
        y0[i] = point.y
    yaw0 = np.full(n, start_heading)
    v0 = np.array([spec.scenario.initial_speed for spec in lane_specs],
                  dtype=float)

    vehicle = BatchVehicle(n, model=base.model, x=x0, y=y0, yaw=yaw0, v=v0)
    ekf = BatchEkf([spec.ekf_config for spec in lane_specs])
    ekf.reset(x0, y0, yaw0, v0)

    # --- sensor tapes stacked to (n_steps, n) --------------------------
    tp_gps_fresh = np.stack([tp.gps_fresh for tp in tapes], axis=1)
    tp_gps_walk_x = np.stack([tp.gps_walk_x for tp in tapes], axis=1)
    tp_gps_walk_y = np.stack([tp.gps_walk_y for tp in tapes], axis=1)
    tp_gps_noise_x = np.stack([tp.gps_noise_x for tp in tapes], axis=1)
    tp_gps_noise_y = np.stack([tp.gps_noise_y for tp in tapes], axis=1)
    tp_imu_fresh = np.stack([tp.imu_fresh for tp in tapes], axis=1)
    tp_gyro_noise = np.stack([tp.imu_gyro_noise for tp in tapes], axis=1)
    tp_accel_noise = np.stack([tp.imu_accel_noise for tp in tapes], axis=1)
    gyro_bias = np.array([tp.imu_gyro_bias for tp in tapes])
    accel_bias = np.array([tp.imu_accel_bias for tp in tapes])
    tp_odom_fresh = np.stack([tp.odom_fresh for tp in tapes], axis=1)
    tp_odom_noise = np.stack([tp.odom_noise for tp in tapes], axis=1)
    odom_scale = np.array([tp.odom_scale for tp in tapes])
    tp_cmp_fresh = np.stack([tp.compass_fresh for tp in tapes], axis=1)
    tp_cmp_noise = np.stack([tp.compass_noise for tp in tapes], axis=1)

    # --- trace column buffers -----------------------------------------
    col_f = {name: np.zeros((n_steps, n)) for name in _FLOAT_COLS}
    col_b = {name: np.zeros((n_steps, n), dtype=bool) for name in _BOOL_COLS}
    col_lost = np.zeros((n_steps, n), dtype=np.int64)
    col_s: dict[int, dict[str, list]] = {
        i: {name: [""] * n_steps for name in _STRING_COLS} for i in shim_ids
    }

    # ZOH state (recorder semantics: carry the last reading forward)
    zoh = {name: np.zeros(n) for name in (
        "gps_x", "gps_y", "imu_yaw_rate", "imu_accel", "odom_speed",
        "compass_yaw", "radar_range", "radar_range_rate",
    )}

    eng_hint = np.zeros(n)
    eng_has_hint = np.zeros(n, dtype=bool)
    all_true = np.ones(n, dtype=bool)
    last_predict_t = np.zeros(n)
    has_predict = np.zeros(n, dtype=bool)
    diverged = np.zeros(n, dtype=bool)
    divergence_time = np.full(n, np.nan)
    end_point = None if route.closed else route.end_point()
    no_radar = np.zeros(n)
    no_radar_fresh = np.zeros(n, dtype=bool)

    for step in range(n_steps):
        t = step * dt
        sx, sy, syaw, sv = vehicle.x, vehicle.y, vehicle.yaw, vehicle.v
        syaw_rate, saccel = vehicle.yaw_rate, vehicle.accel

        # --- ground truth at time t -----------------------------------
        proj = broute.project(sx, sy, eng_hint, eng_has_hint)
        eng_hint = proj.station
        eng_has_hint = all_true

        # --- sensing (tape playback; serial association order) --------
        gps_f = tp_gps_fresh[step].copy()
        gps_x = sx + tp_gps_walk_x[step] + tp_gps_noise_x[step]
        gps_y = sy + tp_gps_walk_y[step] + tp_gps_noise_y[step]
        imu_f = tp_imu_fresh[step].copy()
        imu_yaw_rate = syaw_rate + gyro_bias + tp_gyro_noise[step]
        imu_accel = saccel + accel_bias + tp_accel_noise[step]
        odom_f = tp_odom_fresh[step].copy()
        odom_speed = ops.pymax(sv * odom_scale + tp_odom_noise[step], 0.0)
        cmp_f = tp_cmp_fresh[step].copy()
        compass_yaw = ops.normalize_angle(syaw + tp_cmp_noise[step])

        # --- radar / lead ---------------------------------------------
        radar_objs: list = [None] * n
        gap_true = np.zeros(n)
        if has_lead:
            lead_pos = lead.position_on(route)
            lead_vel = lead.velocity_on(route)
            los_x = lead_pos.x - sx
            los_y = lead_pos.y - sy
            gap_true = ops.map2(math.hypot, los_x, los_y)
            rel_x = lead_vel.x - sv * np.cos(syaw)
            rel_y = lead_vel.y - sv * np.sin(syaw)
            with np.errstate(divide="ignore", invalid="ignore"):
                closing = np.where(
                    gap_true > 1e-6,
                    (rel_x * los_x + rel_y * los_y) / gap_true,
                    0.0,
                )
            gap_list = gap_true.tolist()
            closing_list = closing.tolist()
            for i, lane in enumerate(lanes):
                radar_objs[i] = lane.radar.poll_gap(
                    t, gap_list[i], closing_list[i]
                )

        # --- injection + supervisor (object shim per affected lane) ---
        if shim_ids:
            gx_l = gps_x.tolist()
            gy_l = gps_y.tolist()
            iyr_l = imu_yaw_rate.tolist()
            iac_l = imu_accel.tolist()
            od_l = odom_speed.tolist()
            cy_l = compass_yaw.tolist()
        for i in shim_ids:
            lane = lanes[i]
            inj = lane.injectors
            gfix = GpsFix(t, gx_l[i], gy_l[i]) if gps_f[i] else None
            if gfix is not None:
                for attack in lane.campaign.attacks:
                    attack.observe_gps(t, gfix)
                gfix = _apply_channel(
                    inj, "gps", t, gfix, lambda a, v: a.on_gps(t, v)
                )
            imu_r = (ImuReading(t=t, yaw_rate=iyr_l[i], accel=iac_l[i])
                     if imu_f[i] else None)
            imu_r = _apply_channel(
                inj, "imu", t, imu_r, lambda a, v: a.on_imu(t, v)
            )
            odo_r = (OdometryReading(t=t, speed=od_l[i])
                     if odom_f[i] else None)
            odo_r = _apply_channel(
                inj, "odometry", t, odo_r, lambda a, v: a.on_odometry(t, v)
            )
            cmp_r = (CompassReading(t=t, yaw=cy_l[i]) if cmp_f[i] else None)
            cmp_r = _apply_channel(
                inj, "compass", t, cmp_r, lambda a, v: a.on_compass(t, v)
            )
            radar_r = radar_objs[i]
            if has_lead:
                radar_r = _apply_channel(
                    inj, "radar", t, radar_r, lambda a, v: a.on_radar(t, v)
                )
            if lane.supervisor is not None:
                gfix, imu_r, odo_r, cmp_r, radar_r = (
                    lane.supervisor.filter_readings(
                        t, gps=gfix, imu=imu_r, odom=odo_r,
                        compass=cmp_r, radar=radar_r,
                    )
                )
            gps_f[i] = gfix is not None
            if gfix is not None:
                gps_x[i] = gfix.x
                gps_y[i] = gfix.y
            imu_f[i] = imu_r is not None
            if imu_r is not None:
                imu_yaw_rate[i] = imu_r.yaw_rate
                imu_accel[i] = imu_r.accel
            odom_f[i] = odo_r is not None
            if odo_r is not None:
                odom_speed[i] = odo_r.speed
            cmp_f[i] = cmp_r is not None
            if cmp_r is not None:
                compass_yaw[i] = cmp_r.yaw
            radar_objs[i] = radar_r

        radar_f = np.array([r is not None for r in radar_objs]) \
            if has_lead else no_radar_fresh.copy()
        radar_range = no_radar.copy()
        radar_rate = no_radar.copy()
        if has_lead:
            for i, r in enumerate(radar_objs):
                if r is not None:
                    radar_range[i] = r.range_m
                    radar_rate[i] = r.range_rate

        # --- state estimation -----------------------------------------
        if imu_f.any():
            predict_dt = np.where(
                has_predict, ops.pymax(t - last_predict_t, 1e-6), dt
            )
            ekf.predict(imu_yaw_rate, imu_accel, predict_dt, imu_f)
            last_predict_t = np.where(imu_f, t, last_predict_t)
            has_predict = has_predict | imu_f
        ekf.update_gps(gps_x, gps_y, gps_f)
        ekf.update_compass(compass_yaw, cmp_f)
        ekf.update_speed(odom_speed, odom_f)
        est_x = ekf.est_x
        est_y = ekf.est_y
        est_yaw = ekf.est_yaw
        est_v = ekf.est_v
        est_cov = ekf.cov_trace
        nis_gps, nis_speed, nis_compass = (
            ekf.nis_gps, ekf.nis_speed, ekf.nis_compass
        )

        # --- control ---------------------------------------------------
        dec_steer = np.zeros(n)
        dec_accel = np.zeros(n)
        dec_cte = np.zeros(n)
        dec_he = np.zeros(n)
        dec_station = np.zeros(n)
        dec_target = np.zeros(n)
        if bfollower is not None:
            out = bfollower.decide(
                est_x[vec], est_y[vec], est_yaw[vec], est_v[vec], dt,
                radar_range[vec], radar_rate[vec], radar_f[vec],
            )
            dec_steer[vec], dec_accel[vec], dec_cte[vec] = out[0], out[1], out[2]
            dec_he[vec], dec_station[vec], dec_target[vec] = out[3], out[4], out[5]
        for i in object_ids:
            lane = lanes[i]
            estimate = Estimate(
                x=float(est_x[i]), y=float(est_y[i]), yaw=float(est_yaw[i]),
                v=float(est_v[i]), cov_trace=float(est_cov[i]),
                nis_gps=float(nis_gps[i]), nis_speed=float(nis_speed[i]),
                nis_compass=float(nis_compass[i]),
            )
            decision = lane.spec.follower.decide(
                estimate, lane.spec.scenario.route, dt, radar=radar_objs[i]
            )
            dec_steer[i] = decision.steer_cmd
            dec_accel[i] = decision.accel_cmd
            dec_cte[i] = decision.cte
            dec_he[i] = decision.heading_err
            dec_station[i] = decision.station
            dec_target[i] = decision.target_speed

        # --- command channel attacks ----------------------------------
        new_cmd_steer = dec_steer.copy()
        new_cmd_accel = dec_accel.copy()
        for i in shim_ids:
            command = (float(dec_steer[i]), float(dec_accel[i]))
            command = _apply_channel(
                lanes[i].injectors, "command", t, command,
                lambda a, v: a.on_command(t, v[0], v[1]),
            )
            if command is None:
                # A dropped command leaves the previous setpoint latched.
                new_cmd_steer[i] = vehicle.cmd_steer[i]
                new_cmd_accel[i] = vehicle.cmd_accel[i]
            else:
                new_cmd_steer[i] = command[0]
                new_cmd_accel[i] = command[1]
        vehicle.apply_control(new_cmd_steer, new_cmd_accel)

        # --- physics ---------------------------------------------------
        vehicle.step(dt)
        if has_lead:
            lead.step(t, dt)

        # --- ground truth scoring (pre-step state, like serial) -------
        if route.closed:
            dist_to_goal = np.full(n, -1.0)
        else:
            dist_to_goal = ops.map2(
                math.hypot, sx - end_point.x, sy - end_point.y
            )
        cte_true = proj.cross_track
        newly = ~diverged & (np.abs(cte_true) > _DIVERGENCE_CTE)
        divergence_time[newly] = t
        diverged |= newly

        # --- record ----------------------------------------------------
        zoh["gps_x"] = np.where(gps_f, gps_x, zoh["gps_x"])
        zoh["gps_y"] = np.where(gps_f, gps_y, zoh["gps_y"])
        zoh["imu_yaw_rate"] = np.where(imu_f, imu_yaw_rate, zoh["imu_yaw_rate"])
        zoh["imu_accel"] = np.where(imu_f, imu_accel, zoh["imu_accel"])
        zoh["odom_speed"] = np.where(odom_f, odom_speed, zoh["odom_speed"])
        zoh["compass_yaw"] = np.where(cmp_f, compass_yaw, zoh["compass_yaw"])
        zoh["radar_range"] = np.where(radar_f, radar_range, zoh["radar_range"])
        zoh["radar_range_rate"] = np.where(
            radar_f, radar_rate, zoh["radar_range_rate"]
        )

        col_f["true_x"][step] = sx
        col_f["true_y"][step] = sy
        col_f["true_yaw"][step] = syaw
        col_f["true_v"][step] = sv
        col_f["true_yaw_rate"][step] = syaw_rate
        col_f["true_accel"][step] = saccel
        col_f["true_lat_accel"][step] = sv * syaw_rate
        col_f["cte_true"][step] = cte_true
        col_f["heading_err_true"][step] = ops.angle_diff(syaw, proj.heading)
        col_f["station_true"][step] = proj.station
        col_f["dist_to_goal"][step] = dist_to_goal
        for name in ("gps_x", "gps_y", "imu_yaw_rate", "imu_accel",
                     "odom_speed", "compass_yaw", "radar_range",
                     "radar_range_rate"):
            col_f[name][step] = zoh[name]
        col_b["gps_fresh"][step] = gps_f
        col_b["imu_fresh"][step] = imu_f
        col_b["odom_fresh"][step] = odom_f
        col_b["compass_fresh"][step] = cmp_f
        col_b["radar_fresh"][step] = radar_f
        col_b["lead_present"][step] = has_lead
        col_f["gap_true"][step] = gap_true
        col_f["lead_speed"][step] = lead.speed if has_lead else 0.0
        col_f["est_x"][step] = est_x
        col_f["est_y"][step] = est_y
        col_f["est_yaw"][step] = est_yaw
        col_f["est_v"][step] = est_v
        col_f["est_cov_trace"][step] = est_cov
        col_f["nis_gps"][step] = nis_gps
        col_f["nis_speed"][step] = nis_speed
        col_f["nis_compass"][step] = nis_compass
        col_f["cte_est"][step] = dec_cte
        col_f["heading_err_est"][step] = dec_he
        col_f["station_est"][step] = dec_station
        col_f["target_speed"][step] = dec_target
        col_f["steer_cmd"][step] = dec_steer
        col_f["accel_cmd"][step] = dec_accel
        col_f["steer_applied"][step] = vehicle.act_steer
        col_f["accel_applied"][step] = vehicle.act_accel

        for i in shim_ids:
            lane = lanes[i]
            active_attack = next(
                (a for a in lane.campaign.attacks if a.active(t)), None
            )
            active_fault = next(
                (f for f in lane.faults.faults if f.active(t)), None
            )
            strings = col_s[i]
            if active_attack is not None:
                col_b["attack_active"][step, i] = True
                strings["attack_name"][step] = active_attack.name
                strings["attack_channel"][step] = active_attack.channel
            if active_fault is not None:
                col_b["fault_active"][step, i] = True
                strings["fault_name"][step] = active_fault.name
                strings["fault_channel"][step] = active_fault.channel
            if lane.supervisor is not None:
                strings["supervisor_mode"][step] = lane.supervisor.mode
                col_lost[step, i] = len(lane.supervisor.lost_channels)

    # --- assemble per-lane results ------------------------------------
    step_col = np.arange(n_steps, dtype=np.int64)
    t_col = np.arange(n_steps) * dt
    empty_strings = [""] * n_steps
    results: list[RunResult] = []
    for i, lane in enumerate(lanes):
        spec = lane.spec
        scenario = spec.scenario
        meta = TraceMeta(
            scenario=scenario.name,
            controller=spec.follower.name,
            attack=lane.campaign.label,
            seed=scenario.seed,
            dt=dt,
            route_length=route.length,
        )
        if lane.faults.faults:
            meta.extra["fault"] = lane.faults.label
        arrays: dict = {"step": step_col, "t": t_col}
        for name in _FLOAT_COLS:
            arrays[name] = col_f[name][:, i]
        for name in _BOOL_COLS:
            arrays[name] = col_b[name][:, i]
        arrays["supervisor_lost"] = col_lost[:, i]
        strings = col_s.get(i)
        for name in _STRING_COLS:
            arrays[name] = strings[name] if strings else empty_strings
        trace = Trace.from_columns(meta, arrays)
        results.append(RunResult(
            trace=trace,
            metrics=compute_metrics(trace),
            outcome=ScenarioOutcome(
                completed=True,
                diverged=bool(diverged[i]),
                divergence_time=(
                    float(divergence_time[i]) if diverged[i] else None
                ),
            ),
            scenario=scenario,
            controller_name=spec.follower.name,
            attack_label=lane.campaign.label,
        ))
    return results
