"""Wire-format tests: framing, CRC, versioning, truncation detection."""

from __future__ import annotations

import asyncio
import struct

import pytest

from repro.service.protocol import (
    FRAME_MAGIC,
    MAX_HEADER_BYTES,
    MAX_PAYLOAD_BYTES,
    PREFIX_BYTES,
    PROTOCOL_VERSION,
    FrameTruncated,
    FrameType,
    ProtocolError,
    decode_frames,
    encode_frame,
    read_frame,
)


def read_from_bytes(data: bytes):
    """Drive the async reader against an in-memory byte buffer."""
    async def _go():
        reader = asyncio.StreamReader()
        reader.feed_data(data)
        reader.feed_eof()
        return await read_frame(reader)
    return asyncio.run(_go())


class TestRoundTrip:
    def test_empty_frame(self):
        frame = read_from_bytes(encode_frame(FrameType.BYE))
        assert frame.type is FrameType.BYE
        assert frame.header == {}
        assert frame.payload == b""

    def test_header_and_payload(self):
        wire = encode_frame(FrameType.CHUNK, {"seq": 3, "id": "veh-1"},
                            b"\x00\x01binary\xff")
        frame = read_from_bytes(wire)
        assert frame.type is FrameType.CHUNK
        assert frame.header == {"seq": 3, "id": "veh-1"}
        assert frame.payload == b"\x00\x01binary\xff"

    def test_every_frame_type_roundtrips(self):
        for ftype in FrameType:
            frame = read_from_bytes(encode_frame(ftype, {"k": 1}))
            assert frame.type is ftype

    def test_decode_frames_multiple(self):
        wire = (encode_frame(FrameType.HELLO, {"a": 1})
                + encode_frame(FrameType.CHUNK, {"seq": 0}, b"xyz")
                + encode_frame(FrameType.BYE))
        frames = decode_frames(wire)
        assert [f.type for f in frames] == [
            FrameType.HELLO, FrameType.CHUNK, FrameType.BYE]
        assert frames[1].payload == b"xyz"

    def test_clean_eof_returns_none(self):
        assert read_from_bytes(b"") is None


class TestRejection:
    def test_bad_magic(self):
        wire = bytearray(encode_frame(FrameType.ACK, {"seq": 1}))
        wire[:4] = b"NOPE"
        with pytest.raises(ProtocolError, match="magic"):
            read_from_bytes(bytes(wire))

    def test_foreign_version(self):
        wire = bytearray(encode_frame(FrameType.ACK, {}))
        wire[4] = PROTOCOL_VERSION + 1
        with pytest.raises(ProtocolError, match="version"):
            read_from_bytes(bytes(wire))

    def test_unknown_frame_type(self):
        wire = bytearray(encode_frame(FrameType.ACK, {}))
        wire[5] = 200
        with pytest.raises(ProtocolError, match="frame type"):
            read_from_bytes(bytes(wire))

    def test_corrupted_payload_fails_crc(self):
        wire = bytearray(encode_frame(FrameType.CHUNK, {"seq": 0},
                                      b"AAAABBBB"))
        wire[-3] ^= 0xFF  # flip a payload bit
        with pytest.raises(ProtocolError, match="CRC"):
            read_from_bytes(bytes(wire))

    def test_corrupted_header_fails_crc(self):
        wire = bytearray(encode_frame(FrameType.CHUNK, {"seq": 12345}))
        wire[PREFIX_BYTES + 2] ^= 0x01
        with pytest.raises(ProtocolError, match="CRC"):
            read_from_bytes(bytes(wire))

    def test_oversized_payload_rejected_before_read(self):
        prefix = struct.Struct("!4sBBxxIII").pack(
            FRAME_MAGIC, PROTOCOL_VERSION, int(FrameType.CHUNK),
            0, MAX_PAYLOAD_BYTES + 1, 0)
        with pytest.raises(ProtocolError, match="payload length"):
            read_from_bytes(prefix)

    def test_oversized_header_rejected_on_encode(self):
        with pytest.raises(ProtocolError, match="header"):
            encode_frame(FrameType.HELLO,
                         {"pad": "x" * (MAX_HEADER_BYTES + 1)})


class TestTruncation:
    """A torn frame must be distinguishable from a clean close."""

    def test_eof_inside_prefix(self):
        wire = encode_frame(FrameType.CHUNK, {"seq": 0}, b"payload")
        with pytest.raises(FrameTruncated):
            read_from_bytes(wire[:PREFIX_BYTES - 3])

    def test_eof_inside_payload(self):
        wire = encode_frame(FrameType.CHUNK, {"seq": 0}, b"payload-bytes")
        with pytest.raises(FrameTruncated, match="mid-CHUNK"):
            read_from_bytes(wire[:-4])

    def test_decode_frames_trailing_garbage(self):
        wire = encode_frame(FrameType.ACK, {"seq": 1}) + b"\x01\x02"
        with pytest.raises(FrameTruncated):
            decode_frames(wire)

    def test_truncated_is_a_protocol_error(self):
        # Callers that only care about "bad stream" can catch the base.
        assert issubclass(FrameTruncated, ProtocolError)
