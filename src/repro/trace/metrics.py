"""Run-level metrics computed from a trace.

These are the behavioural scores the experiment tables report: tracking
quality (cross-track error statistics), safety margins (peak lateral
acceleration), comfort (steering smoothness), and progress/goal outcome.
All are computed on ground-truth channels — they score what the vehicle
*actually did*, independent of what its (possibly attacked) sensors said.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.trace.analysis import max_abs, rms, sign_change_rate
from repro.trace.schema import Trace

__all__ = ["TraceMetrics", "compute_metrics"]


@dataclass(frozen=True, slots=True)
class TraceMetrics:
    """Scalar summary of one run."""

    duration: float
    distance: float
    """Ground-truth distance travelled, meters."""
    mean_abs_cte: float
    rms_cte: float
    max_abs_cte: float
    mean_abs_heading_err: float
    max_lat_accel: float
    mean_speed: float
    speed_rmse: float
    """RMS of (true speed - target speed) after the launch transient."""
    steer_rms: float
    steer_oscillation_hz: float
    """Sign-change rate of the steering command (limit-cycle indicator)."""
    goal_reached: bool
    progress_fraction: float
    """Fraction of the route length covered (clamped to [0, 1])."""

    def as_dict(self) -> dict:
        return {
            "duration": self.duration,
            "distance": self.distance,
            "mean_abs_cte": self.mean_abs_cte,
            "rms_cte": self.rms_cte,
            "max_abs_cte": self.max_abs_cte,
            "mean_abs_heading_err": self.mean_abs_heading_err,
            "max_lat_accel": self.max_lat_accel,
            "mean_speed": self.mean_speed,
            "speed_rmse": self.speed_rmse,
            "steer_rms": self.steer_rms,
            "steer_oscillation_hz": self.steer_oscillation_hz,
            "goal_reached": self.goal_reached,
            "progress_fraction": self.progress_fraction,
        }


_LAUNCH_TRANSIENT_S = 5.0
_GOAL_RADIUS_M = 3.0


def compute_metrics(trace: Trace) -> TraceMetrics:
    """Compute the scalar summary for a finished run.

    Operates on the cached struct-of-arrays view
    (:meth:`~repro.trace.schema.Trace.columns`): every statistic is one
    numpy reduction over a shared column, and the launch-transient window
    is a slice of the (sorted) time axis instead of a boolean-mask copy.

    Raises:
        ValueError: for an empty trace (no behaviour to score).
    """
    if len(trace) == 0:
        raise ValueError("cannot compute metrics for an empty trace")

    cols = trace.columns()
    t = cols.t
    cte = cols.cte_true
    heading_err = cols.heading_err_true
    lat_accel = cols.true_lat_accel
    v = cols.true_v
    target_v = cols.target_speed
    steer_cmd = cols.steer_cmd
    station = cols.station_true
    dist_to_goal = cols.dist_to_goal

    # Distance travelled from the speed profile (robust to closed routes
    # where the station wraps).
    dt = trace.dt
    distance = float(np.sum(v) * dt)

    # t is strictly increasing, so the first post-transient sample is a
    # binary search and the window a contiguous slice.
    launch_end = int(np.searchsorted(t, t[0] + _LAUNCH_TRANSIENT_S,
                                     side="left"))
    if launch_end < t.size:
        speed_rmse = rms(v[launch_end:] - target_v[launch_end:])
    else:
        speed_rmse = rms(v - target_v)

    route_length = trace.meta.route_length
    if route_length > 0:
        # Monotone envelope of the station handles brief backward
        # projections near corners; closed routes accumulate laps.
        progress = float(np.max(station)) / route_length
        progress_fraction = min(max(progress, 0.0), 1.0)
    else:
        progress_fraction = 0.0

    if dist_to_goal[-1] < 0:
        # Closed-loop route: "goal" is not defined; count continued
        # progress as success.
        goal_reached = progress_fraction >= 0.5
    else:
        goal_reached = bool(np.min(dist_to_goal) <= _GOAL_RADIUS_M)

    return TraceMetrics(
        duration=trace.duration,
        distance=distance,
        mean_abs_cte=float(np.mean(np.abs(cte))),
        rms_cte=rms(cte),
        max_abs_cte=max_abs(cte),
        mean_abs_heading_err=float(np.mean(np.abs(heading_err))),
        max_lat_accel=max_abs(lat_accel),
        mean_speed=float(np.mean(v)),
        speed_rmse=speed_rmse,
        steer_rms=rms(steer_cmd),
        steer_oscillation_hz=sign_change_rate(steer_cmd, dt, deadband=0.01),
        goal_reached=goal_reached,
        progress_fraction=progress_fraction,
    )
