"""Message-channel attacks on the control command link (DoS / delay)."""

from __future__ import annotations

from collections import deque

from repro.attacks.base import Attack, AttackWindow

__all__ = ["CommandDropAttack", "CommandDelayAttack"]


class CommandDropAttack(Attack):
    """Drops control commands with a given probability (bus flooding DoS).

    A dropped command means the actuators keep their previous setpoint —
    the standard hold-last-value failure semantics of a CAN-based loop.
    """

    name = "cmd_drop"
    channel = "command"

    def __init__(self, drop_prob: float = 0.5, window: AttackWindow | None = None):
        super().__init__(window)
        if not 0.0 < drop_prob <= 1.0:
            raise ValueError("drop_prob must be in (0, 1]")
        self.drop_prob = drop_prob

    def on_command(
        self, t: float, steer: float, accel: float
    ) -> tuple[float, float] | None:
        if self.rng is None:
            raise RuntimeError("CommandDropAttack requires bind_rng() before use")
        if self.rng.random() < self.drop_prob:
            return None
        return (steer, accel)


class CommandDelayAttack(Attack):
    """Delays control commands by a fixed number of control periods.

    Extra latency in the actuation path destabilizes tightly tuned lateral
    loops — the oscillation signature assertion A11 looks for.
    """

    name = "cmd_delay"
    channel = "command"

    def __init__(self, delay_steps: int = 6, window: AttackWindow | None = None):
        super().__init__(window)
        if delay_steps < 1:
            raise ValueError("delay_steps must be >= 1")
        self.delay_steps = delay_steps
        self._queue: deque[tuple[float, float]] = deque()

    def reset(self) -> None:
        self._queue.clear()

    def on_command(self, t: float, steer: float, accel: float) -> tuple[float, float]:
        self._queue.append((steer, accel))
        if len(self._queue) <= self.delay_steps:
            # Not enough backlog yet: hold the oldest known command.
            return self._queue[0]
        return self._queue.popleft()
