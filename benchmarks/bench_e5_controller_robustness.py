"""Bench E5 — Table 4: controller robustness under attack."""

from conftest import run_and_print

from repro.experiments import build_controller_robustness


def test_e5_controller_robustness(benchmark, quick_config):
    table = run_and_print(benchmark, build_controller_robustness,
                          quick_config)
    nominal = [r for r in table.rows if r[0] == "none"]
    gps_rows = [r for r in table.rows if r[0] == "gps_bias"]
    # Paper-shape claims: nominal tracking is sub-meter for every
    # controller, and the GPS spoof damages every controller (the shared
    # estimator, not the control law, is the weak point).
    assert all(float(r[2]) < 1.0 for r in nominal)
    assert all(float(r[2]) > 1.5 for r in gps_rows)
