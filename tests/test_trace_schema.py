"""Tests for repro.trace.schema."""

import numpy as np
import pytest

from repro.trace.schema import Trace, TraceMeta, TraceRecord

from conftest import make_record, make_trace


class TestTraceRecord:
    def test_replace(self):
        r = make_record(0)
        r2 = r.replace(gps_x=99.0)
        assert r2.gps_x == 99.0
        assert r.gps_x != 99.0

    def test_frozen(self):
        r = make_record(0)
        with pytest.raises(Exception):
            r.gps_x = 1.0  # type: ignore[misc]


class TestTraceContainer:
    def test_append_and_len(self):
        trace = make_trace(10)
        assert len(trace) == 10

    def test_append_requires_increasing_steps(self):
        trace = Trace()
        trace.append(make_record(5))
        with pytest.raises(ValueError):
            trace.append(make_record(5))
        with pytest.raises(ValueError):
            trace.append(make_record(3))

    def test_getitem_and_slice(self):
        trace = make_trace(10)
        assert trace[0].step == 0
        sub = trace[2:5]
        assert isinstance(sub, Trace)
        assert len(sub) == 3
        assert sub.meta is trace.meta

    def test_iteration(self):
        steps = [r.step for r in make_trace(5)]
        assert steps == [0, 1, 2, 3, 4]

    def test_duration_and_dt(self):
        trace = make_trace(101)
        assert trace.duration == pytest.approx(5.0)
        assert trace.dt == pytest.approx(0.05)

    def test_empty_duration(self):
        assert Trace().duration == 0.0


class TestColumns:
    def test_column_values(self):
        trace = make_trace(4)
        xs = trace.column("true_x")
        assert isinstance(xs, np.ndarray)
        assert xs[1] == pytest.approx(8.0 * 0.05)

    def test_bool_column_as_float(self):
        trace = make_trace(3)
        fresh = trace.column("gps_fresh")
        assert set(fresh) <= {0.0, 1.0}

    def test_unknown_column(self):
        with pytest.raises(KeyError):
            make_trace(3).column("nope")

    def test_string_column_rejected(self):
        with pytest.raises(TypeError):
            make_trace(3).column("attack_name")

    def test_times(self):
        t = make_trace(3).times()
        assert t[2] == pytest.approx(0.1)


class TestWindowAndOnset:
    def test_window(self):
        trace = make_trace(100)
        w = trace.window(1.0, 2.0)
        assert all(1.0 <= r.t < 2.0 for r in w)

    def test_attack_onset(self):
        def mutate(step, record):
            if step >= 50:
                return record.replace(attack_active=True, attack_name="x")
            return record

        trace = make_trace(100, mutate=mutate)
        assert trace.attack_onset() == pytest.approx(50 * 0.05)

    def test_no_attack_onset(self):
        assert make_trace(10).attack_onset() is None


class TestMeta:
    def test_roundtrip(self):
        meta = TraceMeta(scenario="s", controller="c", attack="a", seed=3,
                         dt=0.02, route_length=123.0, extra={"k": 1})
        back = TraceMeta.from_dict(meta.to_dict())
        assert back.scenario == "s"
        assert back.extra == {"k": 1}
        assert back.dt == 0.02

    def test_from_partial_dict(self):
        meta = TraceMeta.from_dict({})
        assert meta.attack == "none"
