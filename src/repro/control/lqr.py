"""LQR lateral controller over the kinematic error model.

Error state ``e = [cte, heading_err]`` with the discrete kinematic
linearization (valid for small errors at speed ``v``):

    cte'         = cte + v * heading_err * dt
    heading_err' = heading_err + (v/L) * steer * dt - v * kappa * dt

The feedback gain solves the discrete algebraic Riccati equation at the
current speed (gains are cached per quantized speed — re-solving the DARE
at 20 Hz would dominate the control cost for no accuracy benefit).  A
curvature feedforward ``atan(L * kappa)`` centers the regulator on the
path's nominal steering.
"""

from __future__ import annotations

import math

import numpy as np
from scipy.linalg import solve_discrete_are

from repro.control.base import LateralController, SteerDecision
from repro.geom.angles import angle_diff
from repro.geom.polyline import Polyline
from repro.geom.vec import Pose

__all__ = ["LqrController"]


class LqrController(LateralController):
    """Discrete LQR path tracker with curvature feedforward.

    Args:
        wheelbase: vehicle wheelbase, meters.
        q_cte: state cost on cross-track error.
        q_heading: state cost on heading error.
        r_steer: input cost on steering.
        preview: lookahead distance (meters) at which the feedforward
            curvature is sampled, compensating actuator lag.
        max_steer: output saturation, rad.
    """

    name = "lqr"
    supports_batch = True

    _SPEED_QUANTUM = 0.25  # m/s; gain cache resolution

    def __init__(
        self,
        wheelbase: float = 2.7,
        q_cte: float = 1.0,
        q_heading: float = 3.0,
        r_steer: float = 8.0,
        preview: float = 4.0,
        max_steer: float = 0.61,
    ):
        if min(q_cte, q_heading, r_steer) <= 0:
            raise ValueError("LQR weights must be positive")
        self.wheelbase = wheelbase
        self.q = np.diag([q_cte, q_heading])
        self.r = np.array([[r_steer]])
        self.preview = preview
        self.max_steer = max_steer
        self._station_hint: float | None = None
        self._gain_cache: dict[tuple[int, int], np.ndarray] = {}

    def reset(self) -> None:
        self._station_hint = None

    def _gain(self, speed: float, dt: float) -> np.ndarray:
        v = max(speed, 0.5)  # keep the model controllable near standstill
        key = (int(round(v / self._SPEED_QUANTUM)), int(round(dt * 1e4)))
        if key not in self._gain_cache:
            v_q = key[0] * self._SPEED_QUANTUM
            a = np.array([[1.0, v_q * dt], [0.0, 1.0]])
            b = np.array([[0.0], [v_q * dt / self.wheelbase]])
            p = solve_discrete_are(a, b, self.q, self.r)
            k = np.linalg.solve(self.r + b.T @ p @ b, b.T @ p @ a)
            self._gain_cache[key] = k
        return self._gain_cache[key]

    def compute_steer(
        self, pose: Pose, speed: float, route: Polyline, dt: float
    ) -> SteerDecision:
        proj = route.project(pose.position, hint_station=self._station_hint)
        self._station_hint = proj.station

        cte = proj.cross_track
        heading_err = angle_diff(pose.yaw, proj.heading)
        e = np.array([cte, heading_err])
        k = self._gain(speed, dt)
        feedback = float(-(k @ e)[0])

        kappa = route.lookahead(proj.station, self.preview).curvature
        feedforward = math.atan(self.wheelbase * kappa)

        steer = _clamp(feedback + feedforward, -self.max_steer, self.max_steer)
        return SteerDecision(
            steer=steer, cte=cte, heading_err=heading_err, station=proj.station
        )


def _clamp(value: float, lo: float, hi: float) -> float:
    return lo if value < lo else hi if value > hi else value
