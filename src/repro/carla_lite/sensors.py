"""CARLA-style sensor actors with ``listen()`` callbacks."""

from __future__ import annotations

from collections.abc import Callable

__all__ = ["SensorActor"]


class SensorActor:
    """A sensor that pushes measurements to registered callbacks.

    Mirrors the ``sensor.listen(callback)`` pattern of the CARLA API.  The
    owning :class:`~repro.carla_lite.world.World` dispatches fresh readings
    on every tick.
    """

    def __init__(self, sensor_type: str):
        self.sensor_type = sensor_type
        self._callbacks: list[Callable[[object], None]] = []
        self._listening = True

    def listen(self, callback: Callable[[object], None]) -> None:
        """Register a callback invoked with every fresh measurement."""
        if not callable(callback):
            raise TypeError("callback must be callable")
        self._callbacks.append(callback)

    def stop(self) -> None:
        """Stop delivering measurements (CARLA: ``sensor.stop()``)."""
        self._listening = False

    @property
    def is_listening(self) -> bool:
        return self._listening

    def _dispatch(self, measurement: object) -> None:
        if not self._listening:
            return
        for callback in self._callbacks:
            callback(measurement)
