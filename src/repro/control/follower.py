"""The waypoint-follower agent: lateral + longitudinal control combined.

This is the "control algorithm" ADAssure debugs as a unit: given a state
estimate and the reference route, produce steering and acceleration
commands.  The speed profile slows for curvature (lateral-acceleration
budget) and brakes to a stop at the goal of open routes.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import TYPE_CHECKING

from repro.control.acc import AccController
from repro.control.base import ControlDecision, LateralController
from repro.control.estimator import Estimate
from repro.control.pid import PidSpeedController
from repro.geom.polyline import Polyline

if TYPE_CHECKING:
    from repro.sim.sensors.radar import RadarReading

__all__ = ["SpeedProfile", "WaypointFollower"]


@dataclass(frozen=True, slots=True)
class SpeedProfile:
    """Target-speed policy along the route."""

    cruise_speed: float = 10.0
    """Nominal target speed, m/s."""
    lat_accel_budget: float = 2.5
    """Comfort limit used to slow down in corners, m/s^2."""
    preview: float = 12.0
    """Distance ahead over which curvature is considered, meters."""
    brake_decel: float = 2.0
    """Comfortable deceleration used for the stopping profile, m/s^2."""
    stop_at_goal: bool = True
    """Brake to a stop at the end of open routes."""

    def __post_init__(self) -> None:
        if self.cruise_speed <= 0 or self.lat_accel_budget <= 0:
            raise ValueError("cruise_speed and lat_accel_budget must be positive")
        if self.brake_decel <= 0 or self.preview < 0:
            raise ValueError("brake_decel must be positive, preview non-negative")

    def target_speed(self, route: Polyline, station: float) -> float:
        """Target speed at the given route station."""
        target = self.cruise_speed
        # Curvature-limited speed over the preview window.
        samples = 4
        for i in range(samples + 1):
            kappa = abs(route.lookahead(station, self.preview * i / samples).curvature)
            if kappa > 1e-6:
                target = min(target, math.sqrt(self.lat_accel_budget / kappa))
        # Stopping profile near the goal (open routes only).
        if self.stop_at_goal and not route.closed:
            remaining = route.remaining(station)
            v_stop = math.sqrt(max(2.0 * self.brake_decel * remaining, 0.0))
            target = min(target, v_stop)
        return max(target, 0.0)


class WaypointFollower:
    """Closed-loop policy: estimate in, control command out."""

    def __init__(
        self,
        lateral: LateralController,
        speed_controller: PidSpeedController | None = None,
        profile: SpeedProfile | None = None,
        acc: AccController | None = None,
    ):
        self.lateral = lateral
        self.speed_controller = speed_controller or PidSpeedController()
        self.profile = profile or SpeedProfile()
        self.acc = acc
        self._goal_latched = False
        self._last_radar: "RadarReading | None" = None

    @property
    def name(self) -> str:
        return self.lateral.name

    def reset(self) -> None:
        self.lateral.reset()
        self.speed_controller.reset()
        self._goal_latched = False
        self._last_radar = None

    def decide(self, estimate: Estimate, route: Polyline, dt: float,
               radar: "RadarReading | None" = None) -> ControlDecision:
        """Compute the full control command from the current estimate."""
        steer_decision = self.lateral.compute_steer(
            estimate.pose, estimate.v, route, dt
        )
        # Mission-complete latch: once the end of an open route is reached,
        # hold the wheel straight and brake to a stop.  Without this the
        # clamped lookahead point falls behind the vehicle and the lateral
        # controller saturates meaninglessly.
        if not route.closed and self.profile.stop_at_goal:
            remaining = route.remaining(steer_decision.station)
            if remaining < 3.0 or (remaining < 8.0 and estimate.v < 2.0):
                self._goal_latched = True
        if self._goal_latched:
            return ControlDecision(
                steer_cmd=0.0,
                accel_cmd=-self.profile.brake_decel,
                cte=steer_decision.cte,
                heading_err=steer_decision.heading_err,
                station=steer_decision.station,
                target_speed=0.0,
            )
        target_speed = self.profile.target_speed(route, steer_decision.station)
        accel_cmd = self.speed_controller.compute_accel(estimate.v, target_speed, dt)
        # ACC arbitration: car-following may only restrict the command.
        if self.acc is not None:
            if radar is not None:
                self._last_radar = radar
            if self._last_radar is not None:
                acc_accel = self.acc.compute_accel(
                    self._last_radar.range_m, self._last_radar.range_rate,
                    estimate.v,
                )
                accel_cmd = min(accel_cmd, acc_accel)
        return ControlDecision(
            steer_cmd=steer_decision.steer,
            accel_cmd=accel_cmd,
            cte=steer_decision.cte,
            heading_err=steer_decision.heading_err,
            station=steer_decision.station,
            target_speed=target_speed,
        )
