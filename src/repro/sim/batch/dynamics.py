"""Batched vehicle: actuator lag + bicycle dynamics over lane arrays.

Mirrors :class:`repro.sim.vehicle.Vehicle` (two-phase command latch, then
actuators, then model) with every scalar expression vectorized in the
serial association order.  ``math.tan`` goes through a scalar loop —
its numpy ufunc differs in the last ulp — while ``sin``/``cos``/``exp``
(of the lane-constant lag factor) match bitwise and stay vectorized.

The dynamic model computes both the linear-tire branch and the kinematic
low-speed branch for every lane and selects per lane afterwards; the
discarded branch may contain inf/NaN from the ``1/v`` terms, which is why
selection happens *before* the final angle normalization.
"""

from __future__ import annotations

import math

import numpy as np

from repro.sim.actuators import ActuatorLimits
from repro.sim.batch import ops
from repro.sim.dynamics import VehicleParams

__all__ = ["BatchVehicle"]


class BatchVehicle:
    """``n`` vehicles stepped in lockstep (shared params, per-lane state)."""

    def __init__(
        self,
        n: int,
        model: str,
        x: np.ndarray,
        y: np.ndarray,
        yaw: np.ndarray,
        v: np.ndarray,
        params: VehicleParams | None = None,
        blend_speed: float = 3.0,
    ):
        if model not in ("kinematic", "dynamic"):
            raise ValueError(f"unknown model {model!r}")
        self.n = n
        self.model = model
        self.params = params or VehicleParams()
        self.blend_speed = blend_speed
        # Same derivation Vehicle.__init__ uses for its default limits.
        self.limits = ActuatorLimits(
            steer_max=self.params.max_steer,
            accel_max=self.params.max_accel,
            brake_max=self.params.max_brake,
        )
        self.x = np.asarray(x, dtype=float).copy()
        self.y = np.asarray(y, dtype=float).copy()
        self.yaw = np.asarray(yaw, dtype=float).copy()
        self.v = np.asarray(v, dtype=float).copy()
        self.vy = np.zeros(n)
        self.yaw_rate = np.zeros(n)
        self.accel = np.zeros(n)  # last applied longitudinal accel
        self.steer = np.zeros(n)  # last applied front wheel angle
        self.act_steer = np.zeros(n)  # actuator internal state
        self.act_accel = np.zeros(n)
        self.cmd_steer = np.zeros(n)  # latched commands
        self.cmd_accel = np.zeros(n)

    # ------------------------------------------------------------------
    def apply_control(self, steer_cmd: np.ndarray, accel_cmd: np.ndarray) -> None:
        """Latch per-lane commands; they take effect at the next step."""
        self.cmd_steer = np.asarray(steer_cmd, dtype=float)
        self.cmd_accel = np.asarray(accel_cmd, dtype=float)

    def step(self, dt: float) -> None:
        """Advance actuators and dynamics by ``dt`` for every lane."""
        steer_applied, accel_applied = self._apply_actuators(dt)
        if self.model == "kinematic":
            out = self._step_kinematic(steer_applied, accel_applied, dt)
        else:
            out = self._step_dynamic(steer_applied, accel_applied, dt)
        x1, y1, raw_yaw, v1, vy1, r1, accel, steer = out
        self.x = x1
        self.y = y1
        self.yaw = ops.normalize_angle(raw_yaw)
        self.v = v1
        self.vy = vy1
        self.yaw_rate = r1
        self.accel = accel
        self.steer = steer

    # ------------------------------------------------------------------
    def _apply_actuators(self, dt: float) -> tuple[np.ndarray, np.ndarray]:
        lim = self.limits
        target_steer = ops.clamp(self.cmd_steer, -lim.steer_max, lim.steer_max)
        if lim.steer_tau > 0:
            alpha = 1.0 - math.exp(-dt / lim.steer_tau)
            desired = self.act_steer + alpha * (target_steer - self.act_steer)
        else:
            desired = target_steer
        max_delta = lim.steer_rate_max * dt
        delta = ops.clamp(desired - self.act_steer, -max_delta, max_delta)
        self.act_steer = ops.clamp(
            self.act_steer + delta, -lim.steer_max, lim.steer_max
        )

        target_accel = ops.clamp(self.cmd_accel, -lim.brake_max, lim.accel_max)
        if lim.accel_tau > 0:
            alpha = 1.0 - math.exp(-dt / lim.accel_tau)
            self.act_accel = self.act_accel + alpha * (target_accel - self.act_accel)
        else:
            self.act_accel = target_accel
        self.act_accel = ops.clamp(self.act_accel, -lim.brake_max, lim.accel_max)
        return self.act_steer, self.act_accel

    # ------------------------------------------------------------------
    def _step_kinematic(
        self, steer_in: np.ndarray, accel_in: np.ndarray, dt: float
    ) -> tuple[np.ndarray, ...]:
        p = self.params
        steer = ops.clamp(steer_in, -p.max_steer, p.max_steer)
        accel = ops.clamp(accel_in, -p.max_brake, p.max_accel)

        v0 = self.v
        a_net = accel - p.drag_coeff * v0
        v1 = ops.clamp(v0 + a_net * dt, 0.0, p.max_speed)
        v_mid = 0.5 * (v0 + v1)

        yaw_rate = v_mid * ops.map1(math.tan, steer) / p.wheelbase
        yaw_mid = self.yaw + 0.5 * yaw_rate * dt
        x1 = self.x + v_mid * np.cos(yaw_mid) * dt
        y1 = self.y + v_mid * np.sin(yaw_mid) * dt
        raw_yaw = self.yaw + yaw_rate * dt
        return x1, y1, raw_yaw, v1, np.zeros(self.n), yaw_rate, accel, steer

    def _step_dynamic(
        self, steer_in: np.ndarray, accel_in: np.ndarray, dt: float
    ) -> tuple[np.ndarray, ...]:
        p = self.params
        kin = self._step_kinematic(steer_in, accel_in, dt)

        steer = ops.clamp(steer_in, -p.max_steer, p.max_steer)
        accel = ops.clamp(accel_in, -p.max_brake, p.max_accel)
        v = self.v
        vy = self.vy
        r = self.yaw_rate
        with np.errstate(divide="ignore", invalid="ignore"):
            alpha_f = (vy + p.lf * r) / v - steer
            alpha_r = (vy - p.lr * r) / v
            fyf = -p.cornering_front * alpha_f
            fyr = -p.cornering_rear * alpha_r
            vy_dot = (fyf + fyr) / p.mass - v * r
            r_dot = (p.lf * fyf - p.lr * fyr) / p.inertia_z

            a_net = accel - p.drag_coeff * v
            v1 = ops.clamp(v + a_net * dt, 0.0, p.max_speed)
            vy1 = vy + vy_dot * dt
            r1 = r + r_dot * dt

            yaw_mid = self.yaw + 0.5 * r1 * dt
            cos_y = np.cos(yaw_mid)
            sin_y = np.sin(yaw_mid)
            vx_world = v * cos_y - vy * sin_y
            vy_world = v * sin_y + vy * cos_y
            x1 = self.x + vx_world * dt
            y1 = self.y + vy_world * dt
            raw_yaw = self.yaw + r1 * dt

        low = self.v < self.blend_speed
        dyn = (x1, y1, raw_yaw, v1, vy1, r1, accel, steer)
        return tuple(np.where(low, k, d) for k, d in zip(kin, dyn))
