"""Signal-analysis helpers shared by metrics, assertions and experiments."""

from __future__ import annotations

from collections.abc import Iterator, Sequence

import numpy as np

__all__ = [
    "moving_average",
    "sliding_windows",
    "sign_change_rate",
    "first_crossing",
    "rms",
    "max_abs",
    "settling_time",
]


def moving_average(signal: Sequence[float] | np.ndarray, window: int) -> np.ndarray:
    """Centered-start moving average with a warm-up ramp.

    The first ``window - 1`` outputs average over the samples available so
    far, so the output has the same length as the input and no phantom
    zeros at the start.
    """
    x = np.asarray(signal, dtype=float)
    if window < 1:
        raise ValueError("window must be >= 1")
    if x.size == 0:
        return x.copy()
    cumsum = np.cumsum(x)
    idx = np.arange(x.size)
    lo = np.maximum(0, idx - window + 1)
    prev = np.where(lo > 0, cumsum[lo - 1], 0.0)
    return (cumsum - prev) / (idx - lo + 1)


def sliding_windows(
    signal: Sequence[float] | np.ndarray, window: int, step: int = 1
) -> Iterator[np.ndarray]:
    """Yield overlapping windows of length ``window`` over the signal."""
    x = np.asarray(signal, dtype=float)
    if window < 1 or step < 1:
        raise ValueError("window and step must be >= 1")
    for start in range(0, max(x.size - window + 1, 0), step):
        yield x[start:start + window]


def sign_change_rate(
    signal: Sequence[float] | np.ndarray, dt: float, deadband: float = 0.0
) -> float:
    """Zero crossings per second, ignoring changes inside ``+-deadband``.

    This is the oscillation metric used by the steering-oscillation
    assertion (A11): a limit-cycling controller produces a high rate.
    """
    x = np.asarray(signal, dtype=float)
    if dt <= 0:
        raise ValueError("dt must be positive")
    if x.size < 2:
        return 0.0
    quantized = np.where(x > deadband, 1, np.where(x < -deadband, -1, 0))
    # A change is two consecutive *non-zero* signs that differ; dropping
    # the in-deadband zeros first makes that a single pairwise compare.
    signs = quantized[quantized != 0]
    changes = int(np.count_nonzero(signs[1:] != signs[:-1]))
    return changes / (x.size * dt)


def first_crossing(
    signal: Sequence[float] | np.ndarray,
    threshold: float,
    times: Sequence[float] | np.ndarray | None = None,
) -> float | None:
    """Time (or index) of the first sample with ``|signal| > threshold``."""
    x = np.asarray(signal, dtype=float)
    idx = np.flatnonzero(np.abs(x) > threshold)
    if idx.size == 0:
        return None
    i = int(idx[0])
    if times is None:
        return float(i)
    return float(np.asarray(times, dtype=float)[i])


def rms(signal: Sequence[float] | np.ndarray) -> float:
    """Root-mean-square of a signal (0.0 for an empty signal)."""
    x = np.asarray(signal, dtype=float)
    if x.size == 0:
        return 0.0
    return float(np.sqrt(np.mean(x * x)))


def max_abs(signal: Sequence[float] | np.ndarray) -> float:
    """Maximum absolute value (0.0 for an empty signal)."""
    x = np.asarray(signal, dtype=float)
    if x.size == 0:
        return 0.0
    return float(np.max(np.abs(x)))


def settling_time(
    signal: Sequence[float] | np.ndarray,
    times: Sequence[float] | np.ndarray,
    band: float,
) -> float | None:
    """Earliest time after which the signal stays within ``+-band`` forever.

    Returns ``None`` if the signal never settles within the trace.
    """
    x = np.asarray(signal, dtype=float)
    t = np.asarray(times, dtype=float)
    if x.shape != t.shape:
        raise ValueError("signal and times must have the same shape")
    if x.size == 0:
        return None
    outside = np.abs(x) > band
    if not outside.any():
        return float(t[0])
    last_outside = int(np.flatnonzero(outside)[-1])
    if last_outside == x.size - 1:
        return None
    return float(t[last_outside + 1])
