"""Tests for the graceful-degradation supervisor (repro.control.supervisor)."""

import math

import pytest

from repro.control.supervisor import (
    MODE_DEAD_RECKONING,
    MODE_NORMAL,
    MODE_SAFE_STOP,
    SupervisedController,
    SupervisorConfig,
    make_supervised_follower,
)
from repro.faults import combined_fault, standard_fault
from repro.sim.engine import run_scenario
from repro.sim.sensors.compass import CompassReading
from repro.sim.sensors.gps import GpsFix
from repro.sim.sensors.imu import ImuReading
from repro.sim.sensors.odometry import OdometryReading

from conftest import short_scenario


def supervised(config: SupervisorConfig | None = None) -> SupervisedController:
    return make_supervised_follower("pure_pursuit", config=config)


def healthy(t: float, salt: float = 0.0) -> dict:
    """A full set of per-step readings with non-repeating payloads."""
    return {
        "gps": GpsFix(t=t, x=1.0 + t + salt, y=2.0 + t),
        "imu": ImuReading(t=t, yaw_rate=0.01 * t, accel=0.1),
        "odom": OdometryReading(t=t, speed=5.0 + 0.01 * t),
        "compass": CompassReading(t=t, yaw=0.001 * t),
    }


def feed(sup: SupervisedController, t0: float, t1: float, dt: float = 0.1,
         drop: tuple[str, ...] = ()) -> None:
    """Drive the watchdog from t0 to t1, suppressing ``drop`` channels."""
    steps = int(round((t1 - t0) / dt))
    for i in range(steps):
        t = t0 + i * dt
        readings = healthy(t)
        for channel in drop:
            readings[channel] = None
        sup.filter_readings(t, **readings)


class TestConfig:
    def test_rejects_nonpositive_timeouts(self):
        with pytest.raises(ValueError):
            SupervisorConfig(gps_timeout=0.0)
        with pytest.raises(ValueError):
            SupervisorConfig(imu_timeout=-1.0)

    def test_rejects_bad_policy_knobs(self):
        with pytest.raises(ValueError):
            SupervisorConfig(safe_stop_lost=0)
        with pytest.raises(ValueError):
            SupervisorConfig(dead_reckoning_budget=0.0)
        with pytest.raises(ValueError):
            SupervisorConfig(degraded_speed=-1.0)

    def test_timeout_lookup(self):
        config = SupervisorConfig(gps_timeout=2.0)
        assert config.timeout("gps") == 2.0
        assert config.timeout("imu") == config.imu_timeout


class TestWatchdog:
    def test_nan_reading_is_quarantined(self):
        sup = supervised()
        gps, imu, odom, compass, radar = sup.filter_readings(
            0.0, gps=GpsFix(t=0.0, x=math.nan, y=2.0),
            imu=healthy(0.0)["imu"], odom=healthy(0.0)["odom"],
            compass=healthy(0.0)["compass"])
        assert gps is None
        assert imu is not None and odom is not None and compass is not None

    def test_repeated_payload_is_quarantined(self):
        sup = supervised()
        first = GpsFix(t=0.0, x=1.0, y=2.0)
        replay = GpsFix(t=0.1, x=1.0, y=2.0)  # re-stamped, same payload
        out1, *_ = sup.filter_readings(0.0, gps=first)
        out2, *_ = sup.filter_readings(0.1, gps=replay)
        assert out1 is first
        assert out2 is None

    def test_quarantined_repeat_does_not_refresh_watchdog(self):
        config = SupervisorConfig(gps_timeout=0.5)
        sup = supervised(config)
        frozen = healthy(0.0)
        for i in range(20):  # frozen GPS payload for 2 s
            t = i * 0.1
            readings = healthy(t)
            readings["gps"] = GpsFix(t=t, x=frozen["gps"].x, y=frozen["gps"].y)
            sup.filter_readings(t, **readings)
        assert "gps" in sup.lost_channels
        assert sup.mode == MODE_DEAD_RECKONING


class TestModeMachine:
    def test_stays_normal_on_healthy_traffic(self):
        sup = supervised()
        feed(sup, 0.0, 5.0)
        assert sup.mode == MODE_NORMAL
        assert sup.lost_channels == ()

    def test_critical_channel_loss_enters_dead_reckoning(self):
        sup = supervised()
        feed(sup, 0.0, 2.0)
        feed(sup, 2.0, 4.0, drop=("gps",))
        assert sup.mode == MODE_DEAD_RECKONING
        assert sup.lost_channels == ("gps",)

    def test_recovery_returns_to_normal(self):
        sup = supervised()
        feed(sup, 0.0, 2.0)
        feed(sup, 2.0, 4.0, drop=("gps",))
        assert sup.mode == MODE_DEAD_RECKONING
        feed(sup, 4.0, 5.0)
        assert sup.mode == MODE_NORMAL

    def test_two_lost_channels_safe_stop_immediately(self):
        sup = supervised()
        feed(sup, 0.0, 2.0)
        feed(sup, 2.0, 4.0, drop=("gps", "compass"))
        assert sup.mode == MODE_SAFE_STOP
        assert sup.safe_stop_since is not None
        # Engages as soon as both watchdogs expire (~1 s timeout).
        assert sup.safe_stop_since < 3.5

    def test_dead_reckoning_budget_escalates_to_safe_stop(self):
        config = SupervisorConfig(dead_reckoning_budget=1.0)
        sup = supervised(config)
        feed(sup, 0.0, 2.0)
        feed(sup, 2.0, 6.0, drop=("gps",))
        assert sup.mode == MODE_SAFE_STOP

    def test_safe_stop_is_latched(self):
        sup = supervised(SupervisorConfig(dead_reckoning_budget=1.0))
        feed(sup, 0.0, 2.0)
        feed(sup, 2.0, 6.0, drop=("gps",))
        assert sup.mode == MODE_SAFE_STOP
        feed(sup, 6.0, 8.0)  # channels come back; mode must not
        assert sup.mode == MODE_SAFE_STOP


class TestDecisionOverride:
    def test_safe_stop_holds_steer_and_brakes(self):
        scenario = short_scenario("s_curve", duration=10.0)
        sup = supervised()
        feed(sup, 0.0, 2.0)
        # Grab a nominal decision so _held_steer is the pass-through value.
        from repro.control.estimator import Estimate
        estimate = Estimate(x=0.0, y=0.0, yaw=0.0, v=5.0,
                            cov_trace=0.1, nis_gps=0.0,
                            nis_speed=0.0, nis_compass=0.0)
        nominal = sup.decide(estimate, scenario.route, 0.1)
        feed(sup, 2.0, 6.0, drop=("gps", "compass"))
        stopped = sup.decide(estimate, scenario.route, 0.1)
        assert stopped.steer_cmd == nominal.steer_cmd
        assert stopped.accel_cmd == -sup.config.safe_stop_decel
        assert stopped.target_speed == 0.0

    def test_dead_reckoning_caps_target_speed(self):
        scenario = short_scenario("s_curve", duration=10.0)
        sup = supervised()
        from repro.control.estimator import Estimate
        estimate = Estimate(x=0.0, y=0.0, yaw=0.0, v=10.0,
                            cov_trace=0.1, nis_gps=0.0,
                            nis_speed=0.0, nis_compass=0.0)
        feed(sup, 0.0, 2.0)
        feed(sup, 2.0, 4.0, drop=("gps",))
        assert sup.mode == MODE_DEAD_RECKONING
        decision = sup.decide(estimate, scenario.route, 0.1)
        assert decision.target_speed <= sup.config.degraded_speed
        assert decision.accel_cmd <= -1.0  # bleeding off excess speed


class TestClosedLoop:
    def test_gps_freeze_supervised_bounded_unsupervised_diverges(self):
        scenario = short_scenario("s_curve", duration=35.0)
        faults = standard_fault("gps_freeze", onset=10.0)
        bare = run_scenario(scenario, faults=faults)
        safe = run_scenario(scenario, faults=faults, supervised=True)
        assert bare.metrics.max_abs_cte > 5.0
        assert safe.metrics.max_abs_cte < 2.0
        assert any(rec.supervisor_mode == MODE_SAFE_STOP
                   for rec in safe.trace)

    def test_gps_nan_crashes_unsupervised_only(self):
        scenario = short_scenario("s_curve", duration=25.0)
        faults = standard_fault("gps_nan", onset=10.0)
        with pytest.raises(ValueError):
            run_scenario(scenario, faults=faults)
        safe = run_scenario(scenario, faults=faults, supervised=True)
        assert safe.metrics.max_abs_cte < 2.0

    def test_correlated_loss_stops_quickly(self):
        scenario = short_scenario("s_curve", duration=25.0)
        faults = combined_fault(["gps_dropout", "compass_dropout"],
                                onset=10.0)
        safe = run_scenario(scenario, faults=faults, supervised=True)
        stop_times = [rec.t for rec in safe.trace
                      if rec.supervisor_mode == MODE_SAFE_STOP]
        assert stop_times and stop_times[0] < 12.0
        assert safe.trace[-1].true_v < 0.5

    def test_supervisor_is_transparent_on_nominal_run(self):
        scenario = short_scenario("s_curve", duration=20.0)
        safe = run_scenario(scenario, supervised=True)
        assert all(rec.supervisor_mode == MODE_NORMAL
                   for rec in safe.trace)
        assert safe.metrics.max_abs_cte < 1.0
        assert safe.controller_name == "supervised:pure_pursuit"
