"""Forward radar: range and range-rate to the lead vehicle.

Unlike the ego-state sensors, the radar measures a *relative* quantity,
so it is polled by the engine with the ground-truth gap rather than the
vehicle state.  Noise model: white Gaussian on range and range-rate, with
optional dropout (target lost).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.sim.sensors.base import Sensor, SensorConfig

__all__ = ["RadarReading", "RadarConfig", "Radar"]


@dataclass(frozen=True, slots=True)
class RadarReading:
    """One radar track of the lead vehicle."""

    t: float
    range_m: float
    """Distance to the lead vehicle along the lane, meters."""
    range_rate: float
    """Closing speed (negative = approaching), m/s."""

    def with_range(self, range_m: float) -> "RadarReading":
        return RadarReading(self.t, max(range_m, 0.0), self.range_rate)

    def with_range_rate(self, range_rate: float) -> "RadarReading":
        return RadarReading(self.t, self.range_m, range_rate)


@dataclass(frozen=True, slots=True)
class RadarConfig(SensorConfig):
    """Radar noise model parameters."""

    rate_hz: float = 20.0
    range_noise_std: float = 0.15
    """White range noise, meters (automotive long-range radar class)."""
    rate_noise_std: float = 0.1
    """White range-rate noise, m/s."""
    max_range: float = 150.0
    """Targets beyond this range are not reported."""

    def __post_init__(self) -> None:
        SensorConfig.__post_init__(self)
        if self.range_noise_std < 0 or self.rate_noise_std < 0:
            raise ValueError("noise parameters must be non-negative")
        if self.max_range <= 0:
            raise ValueError("max_range must be positive")


class Radar(Sensor):
    """Radar producing :class:`RadarReading` tracks of the lead vehicle.

    ``poll`` is inherited for scheduling; the engine calls
    :meth:`measure_gap` with the ground-truth relative state instead of
    the base ``_measure`` hook.
    """

    channel = "radar"

    def __init__(self, config: RadarConfig, rng: np.random.Generator):
        super().__init__(config, rng)
        self.radar_config = config

    def poll_gap(self, t: float, gap: float,
                 closing_speed: float) -> RadarReading | None:
        """Sample the lead-vehicle track if one is due at time ``t``.

        Args:
            t: simulation time.
            gap: true arc-length gap to the lead vehicle, meters.
            closing_speed: ``v_lead - v_ego``, m/s.

        Returns:
            A noisy reading, or ``None`` (not due / dropout / out of range).
        """
        if not self.sample_due(t):
            return None
        cfg = self.radar_config
        if gap > cfg.max_range or gap < 0:
            return None
        return RadarReading(
            t=t,
            range_m=max(gap + float(self.rng.normal(0, cfg.range_noise_std)), 0.0),
            range_rate=closing_speed + float(self.rng.normal(0, cfg.rate_noise_std)),
        )

    def _measure(self, t: float, state) -> object:
        raise NotImplementedError("radar is polled via poll_gap()")
