"""Bench E4 — Table 3: root-cause diagnosis accuracy."""

from conftest import run_and_print

from repro.experiments import build_diagnosis_accuracy


def test_e4_diagnosis_accuracy(benchmark, quick_config):
    table = run_and_print(benchmark, build_diagnosis_accuracy, quick_config)
    total = table.rows[-1]
    assert total[0] == "TOTAL"
    top1_num, top1_den = total[2].split()[0].split("/")
    top2_num, top2_den = total[3].split()[0].split("/")
    # Paper-shape claims: strong top-1, near-total top-2.
    assert int(top1_num) / int(top1_den) >= 0.7
    assert int(top2_num) / int(top2_den) >= int(top1_num) / int(top1_den)
