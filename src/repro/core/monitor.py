"""Online assertion monitor.

Feeds records to a set of assertions as they are produced and surfaces
violations the moment their episodes close.  The offline checker's
``engine="step"`` path wraps this same monitor; its default vectorized
engine produces byte-identical reports and is differential-tested against
the monitor (``tests/test_core_checker.py``,
``tests/test_checker_equivalence.py``).
"""

from __future__ import annotations

from collections.abc import Iterable, Sequence

from repro.core.dsl import TraceAssertion
from repro.core.verdicts import CheckReport, Violation
from repro.trace.schema import Trace, TraceRecord

__all__ = ["OnlineMonitor", "build_report"]


def build_report(
    assertions: Sequence[TraceAssertion],
    trace: Trace | None = None,
    *,
    first_record: TraceRecord | None = None,
    last_record: TraceRecord | None = None,
) -> CheckReport:
    """Assemble a :class:`CheckReport` from already-finished assertions.

    Shared by the online monitor and the vectorized offline checker so
    both produce reports with identical structure: summaries in catalog
    order, violations sorted by ``(t_start, assertion_id)``, duration and
    labels from the trace metadata when available.
    """
    all_violations: list[Violation] = []
    summaries = {}
    for assertion in assertions:
        summary = assertion.summarize()
        summaries[assertion.assertion_id] = summary
        all_violations.extend(assertion.violations)
    all_violations.sort(key=lambda v: (v.t_start, v.assertion_id))
    meta = trace.meta if trace is not None else None
    if trace is not None:
        duration = trace.duration
    elif last_record is not None and first_record is not None:
        # Span of the observed stream, matching Trace.duration (which
        # is 0.0 for traces of fewer than two records).
        duration = last_record.t - first_record.t
    else:
        duration = 0.0
    return CheckReport(
        scenario=meta.scenario if meta else "",
        controller=meta.controller if meta else "",
        attack_label=meta.attack if meta else "",
        duration=duration,
        violations=all_violations,
        summaries=summaries,
    )


class OnlineMonitor:
    """Evaluates a set of assertions over a stream of trace records.

    Usage::

        monitor = OnlineMonitor(default_catalog())
        for record in live_records:
            for violation in monitor.feed(record):
                alert(violation)
        report = monitor.finish()
    """

    def __init__(self, assertions: Sequence[TraceAssertion]):
        ids = [a.assertion_id for a in assertions]
        if len(set(ids)) != len(ids):
            raise ValueError(f"duplicate assertion ids: {ids}")
        self.assertions = list(assertions)
        self.reset()

    def reset(self) -> None:
        """Return the monitor to its pristine state for a fresh stream.

        Monitors carry no stream-specific configuration, so a server
        handling many sessions can pool and reuse them instead of
        re-instantiating the assertion catalog per session.
        """
        for assertion in self.assertions:
            assertion.reset()
        self._first_record: TraceRecord | None = None
        self._last_record: TraceRecord | None = None
        self._finished = False
        self._report: CheckReport | None = None

    def feed(self, record: TraceRecord) -> list[Violation]:
        """Process one record; returns episodes that closed at this step."""
        if self._finished:
            raise RuntimeError("monitor already finished; create a new one")
        if self._first_record is None:
            self._first_record = record
        self._last_record = record
        violations = []
        for assertion in self.assertions:
            v = assertion.step(record)
            if v is not None:
                violations.append(v)
        return violations

    def feed_all(self, records: Iterable[TraceRecord]) -> list[Violation]:
        """Feed many records; returns all episodes closed along the way."""
        out: list[Violation] = []
        for record in records:
            out.extend(self.feed(record))
        return out

    def finish(self, trace: Trace | None = None) -> CheckReport:
        """Close open episodes, run end-of-trace checks, build the report.

        An empty stream (no records fed, or an empty ``trace``) yields a
        well-formed zero-duration report: no violations, every assertion
        summarized as silent.

        Idempotent: calling ``finish`` again returns the same report
        object (a disconnect-and-resume client may ask twice; the
        verdict must not change or double-close episodes).  Only
        :meth:`reset` re-arms the monitor for a new stream.

        Args:
            trace: optionally attach the trace's metadata to the report
                (pass the trace the records came from).  Ignored on
                repeat calls — the first report stands.
        """
        if self._finished:
            return self._report
        self._finished = True
        for assertion in self.assertions:
            assertion.finish(self._last_record)
        self._report = build_report(
            self.assertions, trace,
            first_record=self._first_record,
            last_record=self._last_record,
        )
        return self._report
