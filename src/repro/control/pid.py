"""PID longitudinal (speed) controller with anti-windup."""

from __future__ import annotations

__all__ = ["PidSpeedController"]


class PidSpeedController:
    """Classic PID on speed error producing an acceleration command.

    Anti-windup: the integrator is clamped and stops accumulating while
    the output is saturated in the same direction (conditional
    integration), which prevents launch overshoot.
    """

    name = "pid"

    def __init__(
        self,
        kp: float = 1.2,
        ki: float = 0.25,
        kd: float = 0.05,
        accel_max: float = 3.0,
        brake_max: float = 6.0,
        integral_limit: float = 4.0,
    ):
        if kp < 0 or ki < 0 or kd < 0:
            raise ValueError("PID gains must be non-negative")
        if accel_max <= 0 or brake_max <= 0 or integral_limit <= 0:
            raise ValueError("limits must be positive")
        self.kp = kp
        self.ki = ki
        self.kd = kd
        self.accel_max = accel_max
        self.brake_max = brake_max
        self.integral_limit = integral_limit
        self._integral = 0.0
        self._prev_error: float | None = None

    def reset(self) -> None:
        self._integral = 0.0
        self._prev_error = None

    def compute_accel(self, speed: float, target_speed: float, dt: float) -> float:
        """Acceleration command (positive drive, negative brake), m/s^2."""
        if dt <= 0:
            raise ValueError("dt must be positive")
        error = target_speed - speed
        derivative = 0.0
        if self._prev_error is not None:
            derivative = (error - self._prev_error) / dt
        self._prev_error = error

        unsat = self.kp * error + self.ki * self._integral + self.kd * derivative
        saturated_hi = unsat > self.accel_max
        saturated_lo = unsat < -self.brake_max
        if not (saturated_hi and error > 0) and not (saturated_lo and error < 0):
            self._integral = _clamp(
                self._integral + error * dt,
                -self.integral_limit,
                self.integral_limit,
            )
        output = self.kp * error + self.ki * self._integral + self.kd * derivative
        return _clamp(output, -self.brake_max, self.accel_max)


def _clamp(value: float, lo: float, hi: float) -> float:
    return lo if value < lo else hi if value > hi else value
