"""The built-in assertion catalog.

Each assertion encodes one domain-expert expectation about a healthy AD
control loop.  The catalog deliberately mixes four families (the E8
ablation quantifies their complementary value):

* **behaviour** (A1-A3, A12-A15) — the vehicle's actual motion stays within
  lane/comfort/progress envelopes.  These use ground-truth channels where
  available (we are debugging in simulation, as the paper does in CARLA)
  and detect that *something* is wrong, slowly.
* **consistency** (A4-A9) — redundant observable channels must agree:
  GPS vs. dead reckoning, GPS-derived speed vs. wheel speed, gyro vs.
  compass, EKF innovations vs. their chi-square envelope.  These localize
  *which channel* lies, and they fire before the vehicle visibly deviates.
* **stability** (A10-A11, A13) — the control loop itself behaves: progress
  is made, steering does not limit-cycle or saturate persistently.
* **actuation** (A16) — the plant executes what the controller commanded.

A sixth, later-authored group scores *graceful degradation* under benign
sensor faults (:mod:`repro.faults`): A21 bounds tracking error inside
fault windows, A22 demands a safe-stop response to multi-sensor loss.
Both read only trace channels, so they judge supervised and unsupervised
stacks alike — experiment E14 is built on that symmetry.

Every assertion documents its rationale, its threshold provenance, and the
attack/fault signatures it is designed to catch.
"""

from __future__ import annotations

import math

import numpy as np

from repro.core.dsl import BoundAssertion, TraceAssertion, WindowMeanBoundAssertion
from repro.geom.angles import angle_diff
from repro.trace.schema import TraceColumns, TraceRecord

__all__ = [
    "default_catalog",
    "make_assertion",
    "CATALOG_IDS",
    "CATALOG_STAGES",
]

_SETTLE = 8.0  # seconds of launch transient excluded from behaviour checks


# ---------------------------------------------------------------------------
# Consistency assertions (custom state machines)
# ---------------------------------------------------------------------------
class GpsDeadReckoningAssertion(TraceAssertion):
    """A4 — GPS fixes must agree with wheel/compass dead reckoning.

    The monitor integrates wheel speed along compass heading from a
    periodically re-anchored origin; every fresh GPS fix is compared to
    the dead-reckoned position.  The allowed divergence grows slowly with
    distance travelled (odometry scale error + heading noise) from a base
    of ~3x GPS noise.

    Signatures: a *bias/jump* spoof violates at onset only (offset is
    consistent afterwards); a *drift* spoof re-violates every anchor
    window; *freeze* and *replay* diverge as the vehicle moves.
    """

    def __init__(self, anchor_window: float = 8.0, base_bound: float = 1.4,
                 per_meter: float = 0.015, min_travel: float = 3.0):
        super().__init__(
            "A4", "GPS / dead-reckoning consistency", "consistency",
            settle_time=2.0, debounce_on=2, debounce_off=10,
        )
        self.anchor_window = anchor_window
        self.base_bound = base_bound
        self.per_meter = per_meter
        self.min_travel = min_travel
        self.on_reset()

    def on_reset(self) -> None:
        self._anchor: tuple[float, float, float] | None = None  # (t, x, y)
        self._dr_x = 0.0
        self._dr_y = 0.0
        self._dist = 0.0
        self._heading: float | None = None
        self._last_t: float | None = None

    def margin(self, record: TraceRecord) -> float | None:
        # Heading for dead reckoning: compass-anchored, gyro-propagated
        # between compass samples (removes the staleness error a raw
        # zero-order-held compass would add in corners).
        if record.compass_fresh or self._heading is None:
            self._heading = record.compass_yaw
        if self._last_t is not None:
            dt = record.t - self._last_t
            if not record.compass_fresh:
                self._heading += record.imu_yaw_rate * dt
            mid_heading = self._heading - 0.5 * record.imu_yaw_rate * dt
            step = record.odom_speed * dt
            self._dr_x += step * math.cos(mid_heading)
            self._dr_y += step * math.sin(mid_heading)
            self._dist += abs(step)
        self._last_t = record.t

        if not record.gps_fresh:
            return None
        if self._anchor is None or (record.t - self._anchor[0]) >= self.anchor_window:
            self._anchor = (record.t, record.gps_x, record.gps_y)
            self._dr_x = record.gps_x
            self._dr_y = record.gps_y
            self._dist = 0.0
            return None
        if self._dist < self.min_travel:
            # A stationary (or barely moved) vehicle gives the comparison
            # no leverage: the residual is pure receiver noise/walk.
            return None
        error = math.hypot(record.gps_x - self._dr_x, record.gps_y - self._dr_y)
        bound = self.base_bound + self.per_meter * self._dist
        return 1.0 - error / bound


class GpsJumpAssertion(TraceAssertion):
    """A5 — consecutive GPS fixes must be kinematically plausible.

    The distance between consecutive fixes is bounded by the wheel-speed
    envelope over the fix interval plus a noise allowance.  Catches
    jump-and-hold spoofs, replay onsets, and jamming-grade noise; a slow
    drift is (by design) invisible to this assertion.
    """

    def __init__(self, speed_margin: float = 3.0, base_allowance: float = 2.2):
        super().__init__(
            "A5", "GPS jump plausibility", "consistency",
            settle_time=1.0, debounce_on=1, debounce_off=3,
        )
        self.speed_margin = speed_margin
        self.base_allowance = base_allowance
        self.on_reset()

    def on_reset(self) -> None:
        self._prev_fix: tuple[float, float, float] | None = None

    def margin(self, record: TraceRecord) -> float | None:
        if not record.gps_fresh:
            return None
        prev = self._prev_fix
        self._prev_fix = (record.t, record.gps_x, record.gps_y)
        if prev is None:
            return None
        dt_fix = record.t - prev[0]
        if dt_fix <= 0:
            return None
        dist = math.hypot(record.gps_x - prev[1], record.gps_y - prev[2])
        bound = (record.odom_speed + self.speed_margin) * dt_fix + self.base_allowance
        return 1.0 - dist / bound


class GpsFreezeAssertion(TraceAssertion):
    """A6 — a moving vehicle must see moving GPS fixes.

    Tracks wheel-odometry distance accumulated since the last material GPS
    position change; a frozen receiver lets that distance grow without
    bound.  Noise cannot fake movement out of a literally frozen fix, and
    genuine fixes at driving speed move far more than the change
    threshold per fix interval.
    """

    def __init__(self, move_threshold: float = 0.25, allowed_distance: float = 6.0):
        super().__init__(
            "A6", "GPS freeze detection", "consistency",
            settle_time=2.0, debounce_on=3, debounce_off=5,
        )
        self.move_threshold = move_threshold
        self.allowed_distance = allowed_distance
        self.on_reset()

    def on_reset(self) -> None:
        self._last_fix: tuple[float, float] | None = None
        self._odom_since_move = 0.0
        self._last_t: float | None = None

    def margin(self, record: TraceRecord) -> float | None:
        if self._last_t is not None:
            self._odom_since_move += record.odom_speed * (record.t - self._last_t)
        self._last_t = record.t
        if record.gps_fresh:
            fix = (record.gps_x, record.gps_y)
            if self._last_fix is None or (
                math.hypot(fix[0] - self._last_fix[0], fix[1] - self._last_fix[1])
                > self.move_threshold
            ):
                self._last_fix = fix
                self._odom_since_move = 0.0
        return 1.0 - self._odom_since_move / self.allowed_distance


class SpeedConsistencyAssertion(TraceAssertion):
    """A7 — GPS-derived ground speed must match wheel speed.

    Positions of fixes ~1 s apart give an independent speed estimate; a
    scaled wheel-speed message (or a frozen/replayed GPS) breaks the
    agreement.  The bound absorbs GPS noise differentiated over the
    baseline (~0.7 m/s) with 3x headroom.
    """

    def __init__(self, baseline: float = 1.0, bound: float = 2.2):
        super().__init__(
            "A7", "GPS / wheel-speed consistency", "consistency",
            settle_time=3.0, debounce_on=2, debounce_off=8,
        )
        self.baseline = baseline
        self.bound = bound
        self.on_reset()

    def on_reset(self) -> None:
        self._fixes: list[tuple[float, float, float]] = []
        self._odom: list[tuple[float, float]] = []

    def margin(self, record: TraceRecord) -> float | None:
        self._odom.append((record.t, record.odom_speed))
        cutoff = record.t - 2.0 * self.baseline
        while self._odom and self._odom[0][0] < cutoff:
            self._odom.pop(0)
        if not record.gps_fresh:
            return None
        self._fixes.append((record.t, record.gps_x, record.gps_y))
        while self._fixes and self._fixes[0][0] < cutoff:
            self._fixes.pop(0)
        old = None
        for fix in self._fixes:
            if record.t - fix[0] >= self.baseline:
                old = fix
        if old is None:
            return None
        span = record.t - old[0]
        v_gps = math.hypot(record.gps_x - old[1], record.gps_y - old[2]) / span
        odom_in_span = [v for (tt, v) in self._odom if tt >= old[0]]
        if not odom_in_span:
            return None
        v_odom = sum(odom_in_span) / len(odom_in_span)
        return 1.0 - abs(v_gps - v_odom) / self.bound


class ImuCompassConsistencyAssertion(TraceAssertion):
    """A8 — integrated gyro rate must match the compass heading change.

    Over a sliding window, the heading change implied by integrating the
    gyro is compared with the absolute heading change reported by the
    compass.  An injected gyro bias accumulates linearly in the window; a
    compass spoof appears as a step while the window spans its onset.
    """

    def __init__(self, window: float = 4.0, bound: float = 0.15):
        super().__init__(
            "A8", "IMU / compass consistency", "consistency",
            settle_time=2.0, debounce_on=3, debounce_off=10,
        )
        self.window = window
        self.bound = bound
        self.on_reset()

    def on_reset(self) -> None:
        self._gyro_integral = 0.0
        self._compass_unwrapped: float | None = None
        self._buffer: list[tuple[float, float, float]] = []  # (t, gyro_int, compass)
        self._last_t: float | None = None

    def margin(self, record: TraceRecord) -> float | None:
        if self._last_t is not None:
            self._gyro_integral += record.imu_yaw_rate * (record.t - self._last_t)
        self._last_t = record.t

        if self._compass_unwrapped is None:
            self._compass_unwrapped = record.compass_yaw
        else:
            self._compass_unwrapped += angle_diff(
                record.compass_yaw, self._compass_unwrapped
            )
        self._buffer.append((record.t, self._gyro_integral, self._compass_unwrapped))
        cutoff = record.t - self.window
        while self._buffer and self._buffer[0][0] < cutoff:
            self._buffer.pop(0)
        if self._buffer[-1][0] - self._buffer[0][0] < 0.75 * self.window:
            return None
        gyro_delta = self._buffer[-1][1] - self._buffer[0][1]
        compass_delta = self._buffer[-1][2] - self._buffer[0][2]
        return 1.0 - abs(gyro_delta - compass_delta) / self.bound


# ---------------------------------------------------------------------------
# Stability / progress assertions
# ---------------------------------------------------------------------------
class RouteProgressAssertion(TraceAssertion):
    """A10 — when commanded to move, the (estimated) route station advances.

    Over each sliding window with a meaningful commanded speed, the
    station must advance at least a fraction of the commanded distance.
    A frozen estimate, a stopped vehicle, or a controller chasing a
    spoofed position all stall the station.
    """

    def __init__(self, window: float = 5.0, min_fraction: float = 0.3,
                 min_target: float = 1.5):
        super().__init__(
            "A10", "route progress", "stability",
            settle_time=_SETTLE, debounce_on=3, debounce_off=10,
        )
        self.window = window
        self.min_fraction = min_fraction
        self.min_target = min_target
        self.on_reset()

    def on_reset(self) -> None:
        self._buffer: list[tuple[float, float, float]] = []  # (t, station, target_v)
        # Prefix sums over target speed (reset on station wrap): the
        # window mean is (cum - prev_cum) / len(buffer), which the
        # vectorized path reproduces bit-for-bit via np.cumsum.
        self._cum = 0.0
        self._prev_cum = 0.0

    def margin(self, record: TraceRecord) -> float | None:
        buf = self._buffer
        if buf and record.station_est < buf[-1][1] - 10.0:
            # Station wrapped (closed route) or projection snapped; restart.
            buf.clear()
            self._cum = 0.0
            self._prev_cum = 0.0
        buf.append((record.t, record.station_est, record.target_speed))
        self._cum = self._cum + record.target_speed
        cutoff = record.t - self.window
        while buf and buf[0][0] < cutoff:
            self._prev_cum = self._prev_cum + buf.pop(0)[2]
        span = buf[-1][0] - buf[0][0]
        if span < 0.75 * self.window:
            return None
        mean_target = (self._cum - self._prev_cum) / len(buf)
        if mean_target < self.min_target:
            return None
        expected = mean_target * span * self.min_fraction
        actual = buf[-1][1] - buf[0][1]
        return actual / expected - 1.0

    def margin_array(
        self, cols: TraceColumns
    ) -> tuple[np.ndarray, np.ndarray]:
        t = cols.t
        n = t.size
        station = np.asarray(cols.station_est, dtype=np.float64)
        target = np.asarray(cols.target_speed, dtype=np.float64)
        margins = np.zeros(n, dtype=np.float64)
        applicable = np.zeros(n, dtype=bool)
        # Segment boundaries: the per-step path clears its buffer when
        # the station drops by more than 10 m between consecutive steps.
        wraps = np.flatnonzero(station[1:] < station[:-1] - 10.0) + 1
        seg_starts = np.concatenate(([0], wraps, [n]))
        idx = np.arange(n)
        win_lo = np.searchsorted(t, t - self.window, side="left")
        for a, b in zip(seg_starts[:-1].tolist(), seg_starts[1:].tolist()):
            lo = np.maximum(win_lo[a:b], a)
            cum = np.cumsum(target[a:b])
            prev = np.where(lo > a, cum[lo - a - 1], 0.0)
            count = idx[a:b] - lo + 1
            span = t[a:b] - t[lo]
            mean_target = (cum - prev) / count
            ok = ~(span < 0.75 * self.window) & ~(mean_target < self.min_target)
            expected = mean_target * span * self.min_fraction
            actual = station[a:b] - station[lo]
            with np.errstate(divide="ignore", invalid="ignore"):
                margins[a:b] = np.where(ok, actual / expected - 1.0, 0.0)
            applicable[a:b] = ok
        return margins, applicable


class SteeringOscillationAssertion(TraceAssertion):
    """A11 — the steering command must not limit-cycle.

    Counts deadband-filtered sign changes of the steering command's
    deviation from its window mean; a healthy tuned loop produces well
    under 1 Hz, while added actuation latency or excessive gain produces a
    sustained multi-hertz oscillation.
    """

    def __init__(self, window: float = 4.0, max_rate_hz: float = 0.4,
                 deadband: float = 0.15, min_speed: float = 2.0):
        super().__init__(
            "A11", "steering oscillation", "stability",
            settle_time=_SETTLE, debounce_on=3, debounce_off=20,
        )
        self.window = window
        self.max_rate_hz = max_rate_hz
        self.deadband = deadband
        self.min_speed = min_speed
        self.on_reset()

    def on_reset(self) -> None:
        self._buffer: list[tuple[float, float]] = []
        self._cum = 0.0
        self._prev_cum = 0.0

    def margin(self, record: TraceRecord) -> float | None:
        buf = self._buffer
        buf.append((record.t, record.steer_cmd))
        self._cum = self._cum + record.steer_cmd
        cutoff = record.t - self.window
        while buf and buf[0][0] < cutoff:
            self._prev_cum = self._prev_cum + buf.pop(0)[1]
        span = buf[-1][0] - buf[0][0]
        if span < 0.75 * self.window or record.est_v < self.min_speed:
            return None
        mean = (self._cum - self._prev_cum) / len(buf)
        last_sign = 0
        changes = 0
        for _, s in buf:
            dev = s - mean
            sign = 1 if dev > self.deadband else -1 if dev < -self.deadband else 0
            if sign != 0:
                if last_sign != 0 and sign != last_sign:
                    changes += 1
                last_sign = sign
        rate = changes / span
        return 1.0 - rate / self.max_rate_hz

    def margin_array(
        self, cols: TraceColumns
    ) -> tuple[np.ndarray, np.ndarray]:
        t = cols.t
        n = t.size
        steer = np.asarray(cols.steer_cmd, dtype=np.float64)
        margins = np.zeros(n, dtype=np.float64)
        lo = np.searchsorted(t, t - self.window, side="left")
        span = t - t[lo]
        applicable = (~(span < 0.75 * self.window)
                      & ~(cols.est_v < self.min_speed))
        cum = np.cumsum(steer)
        prev = np.where(lo > 0, cum[lo - 1], 0.0)
        count = np.arange(1, n + 1) - lo
        means = (cum - prev) / count
        rows = np.flatnonzero(applicable)
        if rows.size == 0:
            return margins, applicable
        # The sign-change count depends on the window *mean*, which moves
        # every step — no shared prefix structure — so build one
        # right-aligned 2D view of all applicable windows and count
        # alternations along the rows.  Out-of-window cells are forced to
        # sign 0, which the skip-zeros semantics ignores, exactly like
        # the per-step deadband does; NaN deviations compare False on
        # both sides -> sign 0 there too.
        width = int(count[rows].max())
        padded = np.concatenate((np.zeros(width - 1), steer))
        windows = np.lib.stride_tricks.sliding_window_view(
            padded, width)[rows]
        dev = windows - means[rows, None]
        signs = ((dev > self.deadband).astype(np.int8)
                 - (dev < -self.deadband).astype(np.int8))
        cols_idx = np.arange(width)
        in_window = cols_idx[None, :] >= (lo[rows] - rows + width - 1)[:, None]
        signs[~in_window] = 0
        nonzero = signs != 0
        # Index of the last nonzero sign strictly before each cell.
        last_nz = np.maximum.accumulate(
            np.where(nonzero, cols_idx[None, :], -1), axis=1)
        prev_nz = np.concatenate(
            (np.full((rows.size, 1), -1, dtype=last_nz.dtype),
             last_nz[:, :-1]), axis=1)
        prev_sign = np.take_along_axis(
            signs, np.maximum(prev_nz, 0), axis=1)
        prev_sign[prev_nz < 0] = 0
        flips = nonzero & (prev_sign != 0) & (signs != prev_sign)
        changes = np.count_nonzero(flips, axis=1)
        rate = changes / span[rows]
        margins[rows] = 1.0 - rate / self.max_rate_hz
        return margins, applicable


class SteeringSaturationAssertion(TraceAssertion):
    """A13 — the steering command must not sit at its limit for long.

    Persistent saturation means the controller has lost authority
    (divergence, an unreachable spoofed target, or a hard fault).
    """

    def __init__(self, window: float = 3.0, max_fraction: float = 0.6,
                 steer_limit: float = 0.61):
        super().__init__(
            "A13", "steering saturation", "stability",
            settle_time=_SETTLE, debounce_on=3, debounce_off=10,
        )
        self.window = window
        self.max_fraction = max_fraction
        self.threshold = 0.95 * steer_limit
        self.on_reset()

    def on_reset(self) -> None:
        self._buffer: list[tuple[float, bool]] = []

    def margin(self, record: TraceRecord) -> float | None:
        buf = self._buffer
        buf.append((record.t, abs(record.steer_cmd) >= self.threshold))
        cutoff = record.t - self.window
        while buf and buf[0][0] < cutoff:
            buf.pop(0)
        if buf[-1][0] - buf[0][0] < 0.75 * self.window:
            return None
        fraction = sum(1 for _, sat in buf if sat) / len(buf)
        return 1.0 - fraction / self.max_fraction

    def margin_array(
        self, cols: TraceColumns
    ) -> tuple[np.ndarray, np.ndarray]:
        # Saturated-sample fractions are integer-count ratios, so the
        # prefix-sum-of-counts form is exact (int64 counts, one division).
        t = cols.get("t")
        sat = np.abs(cols.get("steer_cmd")) >= self.threshold
        cum = np.cumsum(sat.astype(np.int64))
        lo = np.searchsorted(t, t - self.window, side="left")
        count = np.arange(1, t.size + 1) - lo
        prev = np.where(lo > 0, cum[lo - 1], 0)
        fraction = (cum - prev) / count
        margins = 1.0 - fraction / self.max_fraction
        applicable = (t - t[lo]) >= 0.75 * self.window
        return margins, applicable


class SpeedTrackingAssertion(TraceAssertion):
    """A14 — estimated speed tracks the commanded target speed.

    Window-mean of the absolute tracking error; sustained error means the
    longitudinal loop is broken (actuation fault, gross estimator error,
    or an infeasible speed profile).
    """

    def __init__(self, window: float = 3.0, bound: float = 2.0):
        super().__init__(
            "A14", "speed tracking", "behaviour",
            settle_time=10.0, debounce_on=3, debounce_off=10,
        )
        self.window = window
        self.bound = bound
        self.on_reset()

    def on_reset(self) -> None:
        self._buffer: list[tuple[float, float]] = []
        self._cum = 0.0
        self._prev_cum = 0.0

    def _clear(self) -> None:
        self._buffer.clear()
        self._cum = 0.0
        self._prev_cum = 0.0

    def margin(self, record: TraceRecord) -> float | None:
        if record.target_speed < 1.0:
            # Stopping / stopped: tracking error is dominated by the
            # deliberate braking profile, not by a fault.
            self._clear()
            return None
        if record.lead_present and record.radar_range < (
            5.0 + 2.5 * record.est_v
        ):
            # ACC is (apparently) constraining the speed below the cruise
            # profile: tracking error against the profile is expected.
            self._clear()
            return None
        # Window mean as a prefix-sum difference (the running sum restarts
        # at every clear), matching the vectorized per-segment cumsum.
        self._cum = self._cum + abs(record.est_v - record.target_speed)
        buf = self._buffer
        buf.append((record.t, self._cum))
        cutoff = record.t - self.window
        while buf and buf[0][0] < cutoff:
            self._prev_cum = buf.pop(0)[1]
        if buf[-1][0] - buf[0][0] < 0.75 * self.window:
            return None
        mean = (self._cum - self._prev_cum) / len(buf)
        return 1.0 - mean / self.bound

    def margin_array(
        self, cols: TraceColumns
    ) -> tuple[np.ndarray, np.ndarray]:
        t = cols.get("t")
        clear = (cols.get("target_speed") < 1.0) | (
            cols.get("lead_present")
            & (cols.get("radar_range") < (5.0 + 2.5 * cols.get("est_v")))
        )
        margins = np.zeros(t.size, dtype=np.float64)
        applicable = np.zeros(t.size, dtype=bool)
        keep = ~clear
        if not keep.any():
            return margins, applicable
        errors = np.abs(cols.get("est_v") - cols.get("target_speed"))
        # Maximal runs of non-cleared samples; the window state restarts
        # at each clear, so every run is an independent prefix-sum world.
        flips = np.flatnonzero(keep[1:] != keep[:-1]) + 1
        starts = np.concatenate(([0], flips))
        ends = np.concatenate((flips, [keep.size]))
        for s, e in zip(starts.tolist(), ends.tolist()):
            if not keep[s]:
                continue
            tt = t[s:e]
            cum = np.cumsum(errors[s:e])
            lo = np.searchsorted(tt, tt - self.window, side="left")
            count = np.arange(1, tt.size + 1) - lo
            prev = np.where(lo > 0, cum[lo - 1], 0.0)
            margins[s:e] = 1.0 - ((cum - prev) / count) / self.bound
            applicable[s:e] = (tt - tt[lo]) >= 0.75 * self.window
        return margins, applicable


class GoalReachedAssertion(TraceAssertion):
    """A15 — the vehicle eventually reaches the route goal (liveness).

    Evaluated once at end of trace: the minimum distance-to-goal seen must
    be below the goal radius.  Not applicable to closed (loop) routes,
    which the engine marks with a negative ``dist_to_goal``.
    """

    def __init__(self, goal_radius: float = 3.0):
        super().__init__(
            "A15", "goal reached", "liveness",
            settle_time=0.0, debounce_on=1, debounce_off=1,
        )
        self.goal_radius = goal_radius
        self.on_reset()

    def on_reset(self) -> None:
        self._min_dist = math.inf
        self._applicable = False

    def margin(self, record: TraceRecord) -> float | None:
        if record.dist_to_goal >= 0.0:
            self._applicable = True
            self._min_dist = min(self._min_dist, record.dist_to_goal)
        return None

    def end_margin(self, last_record: TraceRecord | None) -> float | None:
        if not self._applicable:
            return None
        return 1.0 - self._min_dist / self.goal_radius


class SafeHeadwayAssertion(TraceAssertion):
    """A17 — keep a minimum time gap to the lead vehicle.

    The fundamental car-following safety envelope: ground-truth gap over
    ego speed must stay above a minimum headway.  Only applicable while a
    lead vehicle is present and the ego is actually moving.
    """

    def __init__(self, min_headway: float = 1.0, min_speed: float = 2.0):
        super().__init__(
            "A17", "safe headway", "behaviour",
            settle_time=_SETTLE, debounce_on=3, debounce_off=15,
        )
        self.min_headway = min_headway
        self.min_speed = min_speed

    def margin(self, record: TraceRecord) -> float | None:
        if not record.lead_present or record.true_v < self.min_speed:
            return None
        headway = record.gap_true / record.true_v
        return headway / self.min_headway - 1.0

    def margin_array(
        self, cols: TraceColumns
    ) -> tuple[np.ndarray, np.ndarray]:
        # Negated-comparison mask mirrors the per-step guard exactly
        # (including how a NaN speed compares).
        applicable = cols.get("lead_present") & ~(
            cols.get("true_v") < self.min_speed
        )
        margins = np.zeros(applicable.size, dtype=np.float64)
        idx = np.flatnonzero(applicable)
        if idx.size:
            headway = cols.get("gap_true")[idx] / cols.get("true_v")[idx]
            margins[idx] = headway / self.min_headway - 1.0
        return margins, applicable


class RadarJumpAssertion(TraceAssertion):
    """A18 — consecutive radar ranges must be kinematically plausible.

    The range to a real vehicle changes at most at the closing-speed
    envelope; a ghost-target injection appears as a step.  The direct
    radar analogue of the A5 GPS jump check.
    """

    def __init__(self, closing_margin: float = 10.0, base_allowance: float = 1.5):
        super().__init__(
            "A18", "radar range plausibility", "consistency",
            settle_time=2.0, debounce_on=1, debounce_off=5,
        )
        self.closing_margin = closing_margin
        self.base_allowance = base_allowance
        self.on_reset()

    def on_reset(self) -> None:
        self._prev: tuple[float, float] | None = None  # (t, range)

    def margin(self, record: TraceRecord) -> float | None:
        if not record.lead_present or not record.radar_fresh:
            return None
        prev = self._prev
        self._prev = (record.t, record.radar_range)
        if prev is None:
            return None
        dt_track = record.t - prev[0]
        if dt_track <= 0 or dt_track > 1.0:
            # Track was lost for a while; a re-acquire jump is legitimate.
            return None
        delta = abs(record.radar_range - prev[1])
        bound = ((record.odom_speed + self.closing_margin) * dt_track
                 + self.base_allowance)
        return 1.0 - delta / bound


class RadarRateConsistencyAssertion(TraceAssertion):
    """A19 — the radar's range derivative must match its range-rate.

    A radar track carries redundant information: differentiating the
    range over a short window must reproduce the reported Doppler
    range-rate.  Scaling attacks break exactly this self-consistency
    whenever the relative speed is non-zero.
    """

    def __init__(self, window: float = 1.5, bound: float = 0.9):
        super().__init__(
            "A19", "radar range-rate consistency", "consistency",
            settle_time=2.0, debounce_on=3, debounce_off=10,
        )
        self.window = window
        self.bound = bound
        self.on_reset()

    def on_reset(self) -> None:
        self._tracks: list[tuple[float, float, float]] = []  # (t, range, rate)

    def margin(self, record: TraceRecord) -> float | None:
        if not record.lead_present or not record.radar_fresh:
            return None
        tracks = self._tracks
        if tracks and record.t - tracks[-1][0] > 1.0:
            tracks.clear()  # track dropout: restart the window
        tracks.append((record.t, record.radar_range, record.radar_range_rate))
        cutoff = record.t - self.window
        while tracks and tracks[0][0] < cutoff:
            tracks.pop(0)
        span = tracks[-1][0] - tracks[0][0]
        if span < 0.75 * self.window:
            return None
        slope = (tracks[-1][1] - tracks[0][1]) / span
        mean_rate = sum(rate for _, _, rate in tracks) / len(tracks)
        return 1.0 - abs(slope - mean_rate) / self.bound


class ControlResponsivenessAssertion(TraceAssertion):
    """A20 — a persistent tracking error must provoke a steering response.

    Authored during the E13 refinement round: a deadband/truncation defect
    leaves the vehicle riding a steady sub-meter offset that every other
    assertion tolerates.  The signature is *silence where action is due*:
    the estimated cross-track error stays elevated over a window while the
    steering command remains (near) zero.
    """

    def __init__(self, window: float = 3.0, cte_threshold: float = 0.55,
                 min_response: float = 0.02, min_speed: float = 2.0):
        super().__init__(
            "A20", "control responsiveness", "stability",
            settle_time=_SETTLE, debounce_on=3, debounce_off=15,
        )
        self.window = window
        self.cte_threshold = cte_threshold
        self.min_response = min_response
        self.min_speed = min_speed
        self.on_reset()

    def on_reset(self) -> None:
        self._buffer: list[tuple[float, float, float]] = []  # (t, |cte|, |steer|)
        self._cum = 0.0
        self._prev_cum = 0.0

    def margin(self, record: TraceRecord) -> float | None:
        buf = self._buffer
        buf.append((record.t, abs(record.cte_est), abs(record.steer_cmd)))
        self._cum = self._cum + abs(record.cte_est)
        cutoff = record.t - self.window
        while buf and buf[0][0] < cutoff:
            self._prev_cum = self._prev_cum + buf.pop(0)[1]
        if buf[-1][0] - buf[0][0] < 0.75 * self.window:
            return None
        if record.est_v < self.min_speed:
            return None
        mean_cte = (self._cum - self._prev_cum) / len(buf)
        if mean_cte < self.cte_threshold:
            return None
        max_response = max(s for _, _, s in buf)
        return max_response / self.min_response - 1.0

    def margin_array(
        self, cols: TraceColumns
    ) -> tuple[np.ndarray, np.ndarray]:
        t = cols.t
        n = t.size
        cte_abs = np.abs(np.asarray(cols.cte_est, dtype=np.float64))
        steer_abs = np.abs(np.asarray(cols.steer_cmd, dtype=np.float64))
        margins = np.zeros(n, dtype=np.float64)
        lo = np.searchsorted(t, t - self.window, side="left")
        span = t - t[lo]
        cum = np.cumsum(cte_abs)
        prev = np.where(lo > 0, cum[lo - 1], 0.0)
        count = np.arange(1, n + 1) - lo
        mean_cte = (cum - prev) / count
        applicable = (~(span < 0.75 * self.window)
                      & ~(cols.est_v < self.min_speed)
                      & ~(mean_cte < self.cte_threshold))
        # The window max has no prefix structure; scan only the (rare)
        # applicable windows.  fmax skips NaN like the per-step Python
        # max does — unless the window *starts* on NaN, which Python max
        # propagates, so mirror that case explicitly.
        for i in np.flatnonzero(applicable).tolist():
            seg = steer_abs[lo[i]:i + 1]
            mx = seg[0] if np.isnan(seg[0]) else np.fmax.reduce(seg)
            margins[i] = mx / self.min_response - 1.0
        return margins, applicable


class ActuationConsistencyAssertion(TraceAssertion):
    """A16 — the measured actuator state matches the commanded one.

    Runs a reference model of the steering actuator (first-order lag +
    rate limit + saturation, using the published actuator datasheet
    parameters) on the command stream and compares it with the measured
    steering angle.  Offsets, stuck actuators and in-path command
    tampering all break the match; the closed loop hides them from every
    behavioural assertion.
    """

    def __init__(self, tolerance: float = 0.03, steer_tau: float = 0.15,
                 rate_max: float = 0.8, steer_max: float = 0.61):
        super().__init__(
            "A16", "actuation consistency", "actuation",
            settle_time=2.0, debounce_on=4, debounce_off=10,
        )
        self.tolerance = tolerance
        self.steer_tau = steer_tau
        self.rate_max = rate_max
        self.steer_max = steer_max
        self.on_reset()

    def on_reset(self) -> None:
        self._model_steer = 0.0
        self._last_t: float | None = None

    def margin(self, record: TraceRecord) -> float | None:
        if self._last_t is None:
            self._last_t = record.t
            self._model_steer = record.steer_applied
            return None
        dt = record.t - self._last_t
        self._last_t = record.t
        target = min(max(record.steer_cmd, -self.steer_max), self.steer_max)
        if self.steer_tau > 0:
            alpha = 1.0 - math.exp(-dt / self.steer_tau)
            desired = self._model_steer + alpha * (target - self._model_steer)
        else:
            desired = target
        delta = min(max(desired - self._model_steer, -self.rate_max * dt),
                    self.rate_max * dt)
        self._model_steer = min(max(self._model_steer + delta, -self.steer_max),
                                self.steer_max)
        error = abs(record.steer_applied - self._model_steer)
        return 1.0 - error / self.tolerance


class DegradedTrackingAssertion(TraceAssertion):
    """A21 — cross-track error stays bounded inside sensor-fault windows.

    The graceful-degradation contract: a single-sensor fault may cost
    tracking precision but must not cost the lane.  Gated on the trace's
    fault ground truth (``fault_active``), so it is silent on nominal and
    attack-only runs; the bound is tighter than A1's because a degraded
    stack is expected to slow down rather than cut corners.  Stands down
    once a supervisor's safe stop owns the vehicle — the trace-schema
    ``supervisor_mode`` value ``"safe_stop"`` — because a parked vehicle's
    offset from the route is A22's business, not a tracking failure.
    """

    def __init__(self, bound: float = 2.0):
        super().__init__(
            "A21", "degraded-mode tracking", "behaviour",
            settle_time=_SETTLE, debounce_on=3, debounce_off=20,
        )
        self.bound = bound

    def margin(self, record: TraceRecord) -> float | None:
        if not record.fault_active:
            return None
        if record.supervisor_mode == "safe_stop":
            return None
        return 1.0 - abs(record.cte_true) / self.bound

    def margin_array(
        self, cols: TraceColumns
    ) -> tuple[np.ndarray, np.ndarray]:
        applicable = cols.get("fault_active") & (
            cols.get("supervisor_mode") != "safe_stop"
        )
        return 1.0 - np.abs(cols.get("cte_true")) / self.bound, applicable


class SafeStopEngagementAssertion(TraceAssertion):
    """A22 — multi-sensor loss must provoke a stop within a grace period.

    Re-derives channel staleness from the ``*_fresh`` trace flags rather
    than trusting any supervisor state, so it scores the *vehicle's
    response* symmetrically for supervised and unsupervised stacks: once
    two or more channels have been stale past their per-channel budget
    for longer than the engagement grace, the vehicle must either be
    braking (``accel_cmd`` at or below the braking floor) or already
    at rest.  An unsupervised stack that keeps cruising on a coasting
    estimate fires this within ``grace`` seconds of the loss.

    Staleness budgets mirror the supervisor defaults (a few nominal
    sample intervals per channel), and the grace covers the watchdog
    timeout plus one control-loop reaction.
    """

    _STALE_AFTER = {"gps": 1.0, "compass": 1.0, "odometry": 0.6, "imu": 0.4}

    def __init__(self, lost_channels: int = 2, grace: float = 1.5,
                 stop_speed: float = 0.5, brake_floor: float = 0.5):
        super().__init__(
            "A22", "safe-stop engagement", "liveness",
            settle_time=_SETTLE, debounce_on=3, debounce_off=10,
        )
        self.lost_channels = lost_channels
        self.grace = grace
        self.stop_speed = stop_speed
        self.brake_floor = brake_floor
        self.on_reset()

    def on_reset(self) -> None:
        self._last_fresh: dict[str, float] | None = None
        self._stale_since: float | None = None

    def margin(self, record: TraceRecord) -> float | None:
        if self._last_fresh is None:
            self._last_fresh = {ch: record.t for ch in self._STALE_AFTER}
        fresh = {
            "gps": record.gps_fresh,
            "compass": record.compass_fresh,
            "odometry": record.odom_fresh,
            "imu": record.imu_fresh,
        }
        for channel, is_fresh in fresh.items():
            if is_fresh:
                self._last_fresh[channel] = record.t
        stale = sum(
            record.t - self._last_fresh[ch] > budget
            for ch, budget in self._STALE_AFTER.items()
        )
        if stale < self.lost_channels:
            self._stale_since = None
            return None
        if self._stale_since is None:
            self._stale_since = record.t
        if record.t - self._stale_since <= self.grace:
            return None  # engagement window: the stop may still be coming
        return max(
            1.0 - record.true_v / self.stop_speed,
            -record.accel_cmd / self.brake_floor - 1.0,
        )

    _FLAG_CHANNELS = (("gps", "gps_fresh"), ("compass", "compass_fresh"),
                      ("odometry", "odom_fresh"), ("imu", "imu_fresh"))

    def margin_array(
        self, cols: TraceColumns
    ) -> tuple[np.ndarray, np.ndarray]:
        t = cols.t
        n = t.size
        idx = np.arange(n)
        stale_cnt = np.zeros(n, dtype=np.int64)
        for channel, flag in self._FLAG_CHANNELS:
            # Time of the most recent fresh sample (the first record
            # seeds every channel, mirroring the per-step init).
            last = t[np.maximum.accumulate(
                np.where(cols.get(flag), idx, 0))]
            stale_cnt += (t - last) > self._STALE_AFTER[channel]
        active = stale_cnt >= self.lost_channels
        starts = active.copy()
        starts[1:] = active[1:] & ~active[:-1]
        since = t[np.maximum.accumulate(np.where(starts, idx, 0))]
        applicable = active & ~(t - since <= self.grace)
        stopping = 1.0 - cols.get("true_v") / self.stop_speed
        braking = -cols.get("accel_cmd") / self.brake_floor - 1.0
        # np.where(b > a, b, a) is Python's max(a, b) exactly, NaN
        # ordering included.
        margins = np.where(applicable,
                           np.where(braking > stopping, braking, stopping),
                           0.0)
        return margins, applicable


# ---------------------------------------------------------------------------
# Factory
# ---------------------------------------------------------------------------
def _make_a1() -> TraceAssertion:
    # 2.5 m keeps the vehicle inside a standard 3.5 m lane with margin.
    return BoundAssertion(
        "A1", "cross-track bound", channel="cte_true", bound=2.5,
        category="behaviour", settle_time=_SETTLE, debounce_on=3, debounce_off=20,
    )


def _make_a2() -> TraceAssertion:
    return BoundAssertion(
        "A2", "heading-error bound", channel="heading_err_true", bound=0.5,
        category="behaviour", settle_time=_SETTLE, debounce_on=3, debounce_off=20,
    )


def _make_a3() -> TraceAssertion:
    # Sustained tracking quality: 5 s mean |cte| stays under 1.2 m.
    return WindowMeanBoundAssertion(
        "A3", "cross-track convergence", channel="cte_true", bound=1.2,
        window=5.0, category="behaviour", settle_time=_SETTLE + 2.0,
        debounce_on=2, debounce_off=20,
    )


def _make_a9g() -> TraceAssertion:
    # 2-dof chi-square mean is 2; a 1.5 s mean above 7 is far outside the
    # nominal envelope while tolerating individual spikes.
    return WindowMeanBoundAssertion(
        "A9G", "EKF GPS innovation bound", channel="nis_gps", bound=7.0,
        window=1.5, category="consistency", settle_time=3.0,
        debounce_on=2, debounce_off=10,
    )


def _make_a9s() -> TraceAssertion:
    return WindowMeanBoundAssertion(
        "A9S", "EKF speed innovation bound", channel="nis_speed", bound=5.0,
        window=1.5, category="consistency", settle_time=3.0,
        debounce_on=2, debounce_off=10,
    )


def _make_a9c() -> TraceAssertion:
    return WindowMeanBoundAssertion(
        "A9C", "EKF heading innovation bound", channel="nis_compass", bound=5.0,
        window=1.5, category="consistency", settle_time=3.0,
        debounce_on=2, debounce_off=10,
    )


def _make_a12() -> TraceAssertion:
    """Lateral-acceleration comfort/safety envelope from observables."""

    class LateralAccelAssertion(TraceAssertion):
        def __init__(self) -> None:
            super().__init__(
                "A12", "lateral acceleration bound", "behaviour",
                settle_time=_SETTLE, debounce_on=3, debounce_off=15,
            )

        def margin(self, record: TraceRecord) -> float:
            lat = abs(record.est_v * record.imu_yaw_rate)
            return 1.0 - lat / 4.5

        def margin_array(
            self, cols: TraceColumns
        ) -> tuple[np.ndarray, None]:
            lat = np.abs(cols.get("est_v") * cols.get("imu_yaw_rate"))
            return 1.0 - lat / 4.5, None

    return LateralAccelAssertion()


_FACTORIES: dict[str, object] = {
    "A1": _make_a1,
    "A2": _make_a2,
    "A3": _make_a3,
    "A4": GpsDeadReckoningAssertion,
    "A5": GpsJumpAssertion,
    "A6": GpsFreezeAssertion,
    "A7": SpeedConsistencyAssertion,
    "A8": ImuCompassConsistencyAssertion,
    "A9G": _make_a9g,
    "A9S": _make_a9s,
    "A9C": _make_a9c,
    "A10": RouteProgressAssertion,
    "A11": SteeringOscillationAssertion,
    "A12": _make_a12,
    "A13": SteeringSaturationAssertion,
    "A14": SpeedTrackingAssertion,
    "A15": GoalReachedAssertion,
    "A16": ActuationConsistencyAssertion,
    "A17": SafeHeadwayAssertion,
    "A18": RadarJumpAssertion,
    "A19": RadarRateConsistencyAssertion,
    "A20": ControlResponsivenessAssertion,
    "A21": DegradedTrackingAssertion,
    "A22": SafeStopEngagementAssertion,
}

CATALOG_IDS: tuple[str, ...] = tuple(_FACTORIES)
"""All assertion ids, in catalog order."""

CATALOG_STAGES: dict[str, tuple[str, ...]] = {
    "behavioural": ("A1", "A2", "A3", "A12", "A14", "A15"),
    "gps_consistency": ("A4", "A5", "A6", "A7"),
    "inertial_innovation": ("A8", "A9G", "A9S", "A9C"),
    "stability_actuation": ("A10", "A11", "A13", "A16", "A20"),
    "radar_acc": ("A17", "A18", "A19"),
    "degradation": ("A21", "A22"),
}
"""The methodology's staged catalog growth (E9 refinement loop order)."""


def make_assertion(assertion_id: str) -> TraceAssertion:
    """A fresh instance of one catalog assertion by id."""
    if assertion_id not in _FACTORIES:
        raise ValueError(
            f"unknown assertion id {assertion_id!r}; "
            f"expected one of {list(CATALOG_IDS)}"
        )
    return _FACTORIES[assertion_id]()


def default_catalog(ids: tuple[str, ...] | list[str] | None = None) -> list[TraceAssertion]:
    """Fresh instances of the full catalog (or a subset by id)."""
    selected = CATALOG_IDS if ids is None else tuple(ids)
    return [make_assertion(aid) for aid in selected]
