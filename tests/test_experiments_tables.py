"""Tests for the experiment table renderer and config."""

import pytest

from repro.experiments.config import STANDARD_ATTACKS, ExperimentConfig
from repro.experiments.tables import Table


class TestTable:
    def test_add_row_and_render(self):
        t = Table(title="T", columns=["a", "b"])
        t.add_row(1, 2.5)
        t.add_row("x", True)
        text = t.render()
        assert "T" in text
        assert "2.50" in text
        assert "yes" in text

    def test_row_length_validated(self):
        t = Table(title="T", columns=["a", "b"])
        with pytest.raises(ValueError):
            t.add_row(1)

    def test_alignment(self):
        t = Table(title="T", columns=["name", "v"])
        t.add_row("long-name-here", 1)
        t.add_row("x", 22)
        lines = t.render().splitlines()
        data_lines = lines[4:]
        assert len(data_lines[0]) == len(data_lines[1])

    def test_notes_rendered(self):
        t = Table(title="T", columns=["a"])
        t.add_note("hello note")
        assert "note: hello note" in t.render()

    def test_column_values(self):
        t = Table(title="T", columns=["a", "b"])
        t.add_row(1, 2)
        t.add_row(3, 4)
        assert t.column_values("b") == ["2", "4"]

    def test_str_is_render(self):
        t = Table(title="T", columns=["a"])
        assert str(t) == t.render()


class TestExperimentConfig:
    def test_full_covers_standard_attacks(self):
        assert ExperimentConfig.full().attacks == STANDARD_ATTACKS

    def test_quick_is_smaller(self):
        full, quick = ExperimentConfig.full(), ExperimentConfig.quick()
        assert len(quick.seeds) < len(full.seeds)
        assert len(quick.controllers) < len(full.controllers)
        assert quick.duration is not None
