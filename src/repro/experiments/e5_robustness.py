"""E5 / Table 4 — controller robustness comparison under attack.

Runs every lateral controller against every attack class and reports the
behavioural damage (max |cte|, divergence, goal outcome) plus how many
assertions fired.  Expected shape: damage varies by controller for
actuation/latency attacks, but sensor attacks hit all controllers through
the shared estimator — the methodology's argument for debugging the whole
loop rather than the control law in isolation.
"""

from __future__ import annotations

import statistics

from repro.experiments.config import ExperimentConfig
from repro.experiments.runner import run_grid
from repro.experiments.tables import Table

__all__ = ["build_controller_robustness"]


def build_controller_robustness(config: ExperimentConfig | None = None,
                                workers: int | None = None) -> Table:
    """Controller x attack behavioural damage and assertion coverage."""
    config = config or ExperimentConfig.full()
    scenario = config.trace_scenarios[-1] if config.trace_scenarios else "s_curve"
    runs = run_grid(
        scenarios=(scenario,),
        controllers=config.controllers,
        attacks=("none",) + tuple(config.attacks),
        seeds=(config.seeds[0],),
        onset=config.attack_onset,
        duration=config.duration,
        workers=workers,
    )

    table = Table(
        title=f"Table 4 (E5): controller robustness under attack "
              f"(scenario={scenario}, seed={config.seeds[0]})",
        columns=["attack", "controller", "max |cte| [m]", "rms cte [m]",
                 "goal", "diverged", "# fired", "detected"],
    )

    for attack in ("none",) + tuple(config.attacks):
        for controller in config.controllers:
            matching = [
                r for r in runs
                if r.attack == attack and r.controller == controller
            ]
            assert len(matching) == 1
            run = matching[0]
            m = run.result.metrics
            onset = run.result.trace.attack_onset()
            detected = (
                run.report.any_fired if onset is None
                else run.report.detection_latency(onset) is not None
            )
            table.add_row(
                attack,
                controller,
                m.max_abs_cte,
                m.rms_cte,
                m.goal_reached,
                run.result.outcome.diverged,
                len(run.report.fired_ids),
                detected,
            )

    # Aggregate: per-controller damage across all attacks.
    table.add_note("per-controller mean of max|cte| across attacks: " + ", ".join(
        f"{ctrl}="
        f"{statistics.mean(r.result.metrics.max_abs_cte for r in runs if r.controller == ctrl and r.attack != 'none'):.2f} m"
        for ctrl in config.controllers
    ))
    return table


def main() -> None:
    print(build_controller_robustness().render())


if __name__ == "__main__":
    main()
