"""Tests for repro.faults: models, campaigns, engine integration."""

import math

import numpy as np
import pytest

from repro.attacks.base import AttackWindow
from repro.attacks.campaign import standard_attack
from repro.faults import (
    FAULT_CHANNELS,
    FAULT_CLASSES,
    Dropout,
    Fault,
    FaultCampaign,
    Freeze,
    Intermittent,
    Latency,
    NaNBurst,
    combined_fault,
    make_fault,
    standard_fault,
)
from repro.sim.engine import run_scenario
from repro.sim.sensors.gps import GpsFix

from conftest import short_scenario

WINDOW = AttackWindow(start=2.0, end=8.0)


def fix(t: float, x: float = 1.0, y: float = 2.0) -> GpsFix:
    return GpsFix(t=t, x=x, y=y)


class TestModels:
    def test_dropout_window_and_suppression(self):
        # The engine only invokes hooks while active(t); outside the
        # window the fault is simply skipped.
        fault = Dropout("gps", window=WINDOW)
        assert not fault.active(1.0)
        assert fault.active(5.0)
        assert fault.on_gps(5.0, fix(5.0)) is None

    def test_freeze_replays_last_pre_window_value(self):
        fault = Freeze("gps", window=WINDOW)
        held = fix(1.9, x=7.0, y=8.0)
        fault.observe(1.9, held)
        frozen = fault.on_gps(5.0, fix(5.0, x=9.0, y=9.0))
        assert frozen is not None
        assert (frozen.x, frozen.y) == (7.0, 8.0)

    def test_freeze_without_history_drops(self):
        fault = Freeze("gps", window=WINDOW)
        assert fault.on_gps(5.0, fix(5.0)) is None

    def test_freeze_reset_clears_held_value(self):
        fault = Freeze("gps", window=WINDOW)
        fault.observe(1.0, fix(1.0))
        fault.reset()
        assert fault.on_gps(5.0, fix(5.0)) is None

    def test_nan_burst_poisons_payload_not_timestamp(self):
        fault = NaNBurst("gps", window=WINDOW)
        out = fault.on_gps(5.0, fix(5.0))
        assert out.t == 5.0
        assert math.isnan(out.x) and math.isnan(out.y)

    def test_latency_delays_delivery(self):
        fault = Latency("gps", delay=1.0, window=AttackWindow(0.0))
        assert fault.on_gps(0.0, fix(0.0, x=1.0)) is None
        out = fault.on_gps(1.5, fix(1.5, x=3.0))
        assert out is not None and out.x == 1.0

    def test_latency_rejects_nonpositive_delay(self):
        with pytest.raises(ValueError):
            Latency("gps", delay=0.0)

    def test_intermittent_requires_bound_rng(self):
        fault = Intermittent("gps", drop_prob=0.5, window=WINDOW)
        with pytest.raises(RuntimeError):
            fault.on_gps(5.0, fix(5.0))

    def test_intermittent_drop_rate_tracks_probability(self):
        fault = Intermittent("gps", drop_prob=0.5,
                             window=AttackWindow(0.0))
        fault.bind_rng(np.random.default_rng(0))
        dropped = sum(fault.on_gps(float(i), fix(float(i))) is None
                      for i in range(400))
        assert 140 <= dropped <= 260

    def test_intermittent_rejects_bad_probability(self):
        with pytest.raises(ValueError):
            Intermittent("gps", drop_prob=0.0)
        with pytest.raises(ValueError):
            Intermittent("gps", drop_prob=1.5)

    def test_unknown_channel_rejected(self):
        with pytest.raises(ValueError):
            Dropout("lidar")


class TestCampaign:
    def test_registry_covers_channels(self):
        channels = {standard_fault(name).faults[0].channel
                    for name in FAULT_CLASSES}
        assert channels == set(FAULT_CHANNELS)

    def test_make_fault_validates_class_and_intensity(self):
        with pytest.raises(ValueError, match="unknown fault class"):
            make_fault("gps_teleport")
        with pytest.raises(ValueError, match="intensity"):
            make_fault("gps_dropout", intensity=-1.0)

    def test_standard_fault_none_is_empty(self):
        campaign = standard_fault("none")
        assert campaign.label == "none" and campaign.faults == []

    def test_combined_fault_labels_and_validates(self):
        campaign = combined_fault(["gps_dropout", "compass_dropout"])
        assert campaign.label == "gps_dropout+compass_dropout"
        assert len(campaign.faults) == 2
        with pytest.raises(ValueError):
            combined_fault([])

    def test_every_class_instantiates_a_fault(self):
        for name in FAULT_CLASSES:
            fault = make_fault(name, onset=1.0, end=2.0)
            assert isinstance(fault, Fault)
            assert fault.kind == "fault"


class TestEngineIntegration:
    @pytest.fixture(scope="class")
    def dropout_run(self):
        return run_scenario(
            short_scenario("s_curve", duration=25.0),
            faults=standard_fault("gps_dropout", onset=10.0),
        )

    def test_trace_labels_fault_window(self, dropout_run):
        trace = dropout_run.trace
        assert trace.fault_onset() == pytest.approx(10.0, abs=0.1)
        active = [rec for rec in trace if rec.fault_active]
        assert active and all(rec.t >= 10.0 for rec in active)
        assert active[0].fault_name == "dropout"
        assert active[0].fault_channel == "gps"
        before = [rec for rec in trace if rec.t < 10.0]
        assert all(not rec.fault_active for rec in before)

    def test_gps_stops_refreshing_inside_window(self, dropout_run):
        post = [rec for rec in dropout_run.trace if rec.t >= 10.1]
        assert all(not rec.gps_fresh for rec in post)

    def test_meta_records_fault_label(self, dropout_run):
        assert dropout_run.trace.meta.extra["fault"] == "gps_dropout"

    def test_faults_compose_with_attacks(self):
        result = run_scenario(
            short_scenario("s_curve", duration=20.0),
            campaign=standard_attack("odom_scale", onset=8.0),
            faults=standard_fault("compass_dropout", onset=8.0),
        )
        trace = result.trace
        assert any(rec.fault_active for rec in trace)
        assert any(rec.attack_active for rec in trace)
        post = [rec for rec in trace if rec.t >= 8.1]
        assert all(not rec.compass_fresh for rec in post)

    def test_fault_free_run_is_unaffected(self):
        scenario = short_scenario("s_curve", duration=15.0)
        plain = run_scenario(scenario)
        with_none = run_scenario(scenario, faults=FaultCampaign.none())
        assert [r.true_x for r in plain.trace] == \
            [r.true_x for r in with_none.trace]
