"""Streaming client: feed one trace to the ingest server, chunk by chunk.

The client is deliberately the *untrusted* half of the exactly-once
story: it retries on BUSY, retransmits after lost ACKs, reconnects and
RESUMEs after any disconnect — and relies on the server's sequence
cursor to make all of that idempotent.  The chaos suite drives the same
client code with its failure knobs turned on (forced mid-stream
disconnects, torn frames, duplicated chunks), so the recovery paths are
the tested paths, not parallel test-only code.

``StreamOutcome`` records what the stream experienced (retries,
reconnects, duplicates) along with the verdict, so tests can assert not
just "the verdict matched" but "and it survived N injected failures on
the way".
"""

from __future__ import annotations

import asyncio
from dataclasses import dataclass, field

from repro.service.protocol import (
    FrameTruncated,
    FrameType,
    encode_frame,
    read_frame,
)
from repro.service.session import chunk_to_bytes
from repro.trace.schema import Trace

__all__ = ["StreamError", "StreamOutcome", "TraceStreamClient",
           "stream_trace"]

_DISCONNECTS = (ConnectionError, FrameTruncated,
                asyncio.IncompleteReadError, OSError)


class StreamError(RuntimeError):
    """The server rejected the stream (fatal ERROR frame, or gave up)."""


@dataclass(slots=True)
class StreamOutcome:
    """What one streamed session experienced, end to end."""

    session_id: str
    verdict: dict | None = None
    live_violations: list = field(default_factory=list)
    """Violation dicts pushed on ACKs while the stream was live."""
    chunks_sent: int = 0
    """CHUNK frames written (includes retries and retransmits)."""
    chunks_applied: int = 0
    busy_retries: int = 0
    duplicate_acks: int = 0
    reconnects: int = 0
    resumed_finished: bool = False
    """True when the verdict came from a RESUMED replay, not VERDICT."""


class TraceStreamClient:
    """One vehicle's uplink.  Reusable across sessions."""

    def __init__(self, host: str, port: int, *,
                 chunk_records: int = 64,
                 max_busy_retries: int = 200,
                 max_reconnects: int = 8,
                 reconnect_delay_s: float = 0.05,
                 disconnect_after_chunks: int | None = None,
                 tear_frame: bool = False,
                 duplicate_chunks: bool = False):
        self.host = host
        self.port = port
        self.chunk_records = max(int(chunk_records), 1)
        self.max_busy_retries = max_busy_retries
        self.max_reconnects = max_reconnects
        self.reconnect_delay_s = reconnect_delay_s
        # chaos knobs -----------------------------------------------------
        self.disconnect_after_chunks = disconnect_after_chunks
        """Abruptly drop the connection after this many CHUNK sends
        (fires once), then reconnect and RESUME."""
        self.tear_frame = tear_frame
        """Make the forced disconnect tear a frame in half (the server
        must see ``FrameTruncated``, not a clean close)."""
        self.duplicate_chunks = duplicate_chunks
        """Retransmit every applied chunk once more (simulates a lost
        ACK); the server must answer with a duplicate-ACK, not re-apply."""

    # -- public API -------------------------------------------------------
    async def run(self, trace: Trace, session_id: str) -> StreamOutcome:
        """Stream ``trace`` as ``session_id``; returns the outcome with
        the server's verdict dict (exactly one, however bumpy the ride)."""
        chunks = self._encode_chunks(trace)
        outcome = StreamOutcome(session_id=session_id)
        kill_at = self.disconnect_after_chunks
        reader = writer = None
        try:
            reader, writer, next_seq = await self._open(
                trace, session_id, outcome, hello_first=True)
            if outcome.verdict is not None:
                return outcome  # session already finished server-side
            while next_seq < len(chunks):
                try:
                    if kill_at is not None and outcome.chunks_sent >= kill_at:
                        kill_at = None  # fires once
                        await self._chaos_disconnect(
                            writer, next_seq, chunks[next_seq])
                    next_seq = await self._send_chunk(
                        reader, writer, next_seq, chunks[next_seq], outcome)
                except _DISCONNECTS:
                    reader, writer, next_seq = await self._open(
                        trace, session_id, outcome, hello_first=False)
                    if outcome.verdict is not None:
                        return outcome
            while outcome.verdict is None:
                try:
                    outcome.verdict = await self._finish(reader, writer)
                except _DISCONNECTS:
                    reader, writer, _ = await self._open(
                        trace, session_id, outcome, hello_first=False)
            return outcome
        finally:
            if writer is not None:
                writer.close()
                try:
                    await writer.wait_closed()
                except _DISCONNECTS:
                    pass

    # -- connection / handshake -------------------------------------------
    async def _open(self, trace: Trace, session_id: str,
                    outcome: StreamOutcome, *, hello_first: bool):
        """Connect and handshake; returns ``(reader, writer, next_seq)``.

        First contact speaks HELLO; every reconnect (and a HELLO bounced
        with ``resumable``) speaks RESUME and trusts the server's cursor.
        """
        last_exc: Exception | None = None
        for attempt in range(self.max_reconnects + 1):
            if attempt > 0 or not hello_first:
                outcome.reconnects += 1
            try:
                reader, writer = await asyncio.open_connection(
                    self.host, self.port)
                if hello_first and attempt == 0:
                    writer.write(encode_frame(FrameType.HELLO, {
                        "session_id": session_id,
                        "meta": trace.meta.to_dict()}))
                    await writer.drain()
                    reply = await read_frame(reader)
                    if reply is not None and reply.type == FrameType.WELCOME:
                        return reader, writer, 0
                    if (reply is None or reply.type != FrameType.ERROR
                            or not reply.header.get("resumable")):
                        raise StreamError(
                            "HELLO rejected: "
                            f"{(reply.header if reply else {})!r}")
                    # fall through: same connection, switch to RESUME
                writer.write(encode_frame(FrameType.RESUME, {
                    "session_id": session_id,
                    "meta": trace.meta.to_dict()}))
                await writer.drain()
                reply = await read_frame(reader)
                if reply is None or reply.type != FrameType.RESUMED:
                    raise StreamError(
                        f"RESUME rejected: {(reply.header if reply else {})!r}")
                if reply.header.get("finished"):
                    outcome.verdict = reply.header.get("verdict")
                    outcome.resumed_finished = True
                    return reader, writer, int(reply.header["next_seq"])
                return reader, writer, int(reply.header["next_seq"])
            except _DISCONNECTS as exc:
                last_exc = exc
                await asyncio.sleep(self.reconnect_delay_s)
        raise StreamError(
            f"could not (re)establish session {session_id!r} after "
            f"{self.max_reconnects + 1} attempts") from last_exc

    # -- frame exchanges ---------------------------------------------------
    async def _send_chunk(self, reader, writer, seq: int, payload: bytes,
                          outcome: StreamOutcome) -> int:
        """Send one chunk, absorbing BUSY; returns the server's next_seq."""
        frame = encode_frame(FrameType.CHUNK, {"seq": seq}, payload)
        for _ in range(self.max_busy_retries + 1):
            writer.write(frame)
            await writer.drain()
            outcome.chunks_sent += 1
            reply = await self._expect_reply(reader)
            if reply.type == FrameType.BUSY:
                outcome.busy_retries += 1
                await asyncio.sleep(
                    float(reply.header.get("retry_after_s", 0.05)))
                continue
            if reply.type == FrameType.ACK:
                if reply.header.get("duplicate"):
                    outcome.duplicate_acks += 1
                else:
                    outcome.chunks_applied += 1
                    outcome.live_violations.extend(
                        reply.header.get("violations", []))
                    if self.duplicate_chunks:
                        # Retransmit as if our ACK had been lost; the
                        # server must dedupe on seq.
                        writer.write(frame)
                        await writer.drain()
                        outcome.chunks_sent += 1
                        dup = await self._expect_reply(reader)
                        if (dup.type != FrameType.ACK
                                or not dup.header.get("duplicate")):
                            raise StreamError(
                                "retransmitted chunk was not deduplicated: "
                                f"{dup!r}")
                        outcome.duplicate_acks += 1
                return int(reply.header["next_seq"])
            if reply.type == FrameType.ERROR:
                if reply.header.get("fatal"):
                    raise StreamError(f"server error: "
                                      f"{reply.header.get('message')}")
                # Non-fatal rejection carries the authoritative cursor.
                return int(reply.header.get("next_seq", seq))
            raise StreamError(f"unexpected reply to CHUNK: {reply!r}")
        raise StreamError(
            f"server still busy after {self.max_busy_retries} retries")

    async def _finish(self, reader, writer) -> dict:
        writer.write(encode_frame(FrameType.FINISH, {}))
        await writer.drain()
        reply = await self._expect_reply(reader)
        if reply.type == FrameType.VERDICT:
            return reply.header
        raise StreamError(f"unexpected reply to FINISH: {reply!r}")

    async def _expect_reply(self, reader):
        reply = await read_frame(reader)
        if reply is None:
            raise ConnectionResetError("server closed mid-exchange")
        return reply

    async def _chaos_disconnect(self, writer, seq: int,
                                payload: bytes) -> None:
        """Forced failure: die between frames, or halfway through one."""
        if self.tear_frame:
            frame = encode_frame(FrameType.CHUNK, {"seq": seq}, payload)
            writer.write(frame[:max(len(frame) // 2, 1)])
            await writer.drain()
        writer.transport.abort()  # no FIN handshake: looks like a crash
        raise ConnectionResetError("chaos: forced client disconnect")

    # -- encoding ----------------------------------------------------------
    def _encode_chunks(self, trace: Trace) -> list[bytes]:
        records = list(trace.records)
        if not records:
            raise StreamError("refusing to stream an empty trace")
        return [
            chunk_to_bytes(trace.meta, records[i:i + self.chunk_records])
            for i in range(0, len(records), self.chunk_records)
        ]


async def stream_trace(trace: Trace, host: str, port: int,
                       session_id: str, **client_kwargs) -> StreamOutcome:
    """One-call convenience: stream a trace, get the outcome."""
    client = TraceStreamClient(host, port, **client_kwargs)
    return await client.run(trace, session_id)


async def fetch_status(host: str, port: int) -> dict:
    """Ask a running server for its fleet aggregates snapshot."""
    reader, writer = await asyncio.open_connection(host, port)
    try:
        writer.write(encode_frame(FrameType.STATUS, {}))
        await writer.drain()
        reply = await read_frame(reader)
        if reply is None or reply.type != FrameType.STATS:
            raise StreamError(f"unexpected reply to STATUS: {reply!r}")
        return reply.header
    finally:
        writer.close()
        try:
            await writer.wait_closed()
        except _DISCONNECTS:
            pass
