"""End-to-end pipeline tests: simulate -> persist -> check -> diagnose.

This is the full ADAssure workflow a user runs, exercised for a
representative subset of attack classes (the full grid lives in the
benchmark suite).
"""

import pytest

from repro.attacks.campaign import standard_attack
from repro.core.catalog import default_catalog
from repro.core.checker import check_trace
from repro.core.diagnosis import diagnose
from repro.sim.engine import run_scenario
from repro.trace.io import read_trace_jsonl, write_trace_jsonl

from conftest import short_scenario

CASES = ["gps_bias", "gps_freeze", "imu_gyro_bias", "steer_offset"]


@pytest.fixture(scope="module", params=CASES)
def attacked_case(request, tmp_path_factory):
    attack = request.param
    scenario = short_scenario("s_curve", duration=35.0)
    result = run_scenario(scenario, controller="pure_pursuit",
                          campaign=standard_attack(attack, onset=12.0))
    path = tmp_path_factory.mktemp("traces") / f"{attack}.jsonl"
    write_trace_jsonl(result.trace, path)
    return attack, path


class TestFullPipeline:
    def test_persisted_trace_detects_and_diagnoses(self, attacked_case):
        attack, path = attacked_case
        trace = read_trace_jsonl(path)
        assert trace.meta.attack == attack

        report = check_trace(trace, default_catalog())
        assert report.detection_latency(12.0) is not None, (
            f"{attack} not detected after onset"
        )

        result = diagnose(report)
        assert result.top().cause == attack, (
            f"{attack} misdiagnosed as {result.top().cause}"
        )

    def test_detection_latency_reasonable(self, attacked_case):
        attack, path = attacked_case
        trace = read_trace_jsonl(path)
        report = check_trace(trace, default_catalog())
        latency = report.detection_latency(12.0)
        assert latency is not None
        assert latency < 15.0


class TestNominalPipeline:
    def test_clean_run_stays_clean_through_persistence(self, tmp_path):
        # Full scenario duration: truncating the run below the time needed
        # to reach the goal would (correctly) fire the A15 liveness check.
        result = run_scenario(short_scenario("straight", duration=45.0))
        path = tmp_path / "nominal.jsonl"
        write_trace_jsonl(result.trace, path)
        report = check_trace(read_trace_jsonl(path), default_catalog())
        assert not report.any_fired
        assert diagnose(report).top().cause == "none"
