"""Controller interfaces shared by every lateral controller."""

from __future__ import annotations

import abc
from dataclasses import dataclass

from repro.geom.polyline import Polyline
from repro.geom.vec import Pose

__all__ = [
    "SteerDecision",
    "ControlDecision",
    "LateralController",
    "make_lateral_controller",
]


@dataclass(frozen=True, slots=True)
class SteerDecision:
    """Output of a lateral controller for one step."""

    steer: float
    """Commanded front-wheel angle, rad."""
    cte: float
    """Cross-track error the controller saw (from the estimate), meters."""
    heading_err: float
    """Heading error the controller saw, rad."""
    station: float
    """Arc-length station of the projection used, meters."""


@dataclass(frozen=True, slots=True)
class ControlDecision:
    """Full control command for one step (lateral + longitudinal)."""

    steer_cmd: float
    accel_cmd: float
    cte: float
    heading_err: float
    station: float
    target_speed: float


class LateralController(abc.ABC):
    """A path-tracking lateral controller.

    Controllers are *stateful* (station hints, integrators, previous
    solutions) and must be ``reset()`` between runs.  They see only the
    estimated pose and speed — never ground truth — which is what makes
    sensor attacks visible in their behaviour.
    """

    name: str = "lateral"

    supports_batch: bool = False
    """Whether :mod:`repro.sim.batch` has a vectorized implementation of
    this controller.  Pure-function trackers (Pure Pursuit, Stanley, LQR)
    set this; controllers with per-step solver state (MPC) leave it False
    and run per-lane inside the batch loop instead."""

    def reset(self) -> None:
        """Clear internal state before a new run (default: nothing)."""

    @abc.abstractmethod
    def compute_steer(
        self, pose: Pose, speed: float, route: Polyline, dt: float
    ) -> SteerDecision:
        """Compute the steering command for the current estimate.

        Args:
            pose: estimated vehicle pose (rear-axle reference).
            speed: estimated longitudinal speed, m/s.
            route: the reference route.
            dt: controller period, seconds.
        """


def make_lateral_controller(name: str, **kwargs) -> LateralController:
    """Factory for the four built-in lateral controllers by name.

    Args:
        name: one of ``pure_pursuit``, ``stanley``, ``lqr``, ``mpc``.
        kwargs: forwarded to the controller constructor.
    """
    from repro.control.lqr import LqrController
    from repro.control.mpc import MpcController
    from repro.control.pure_pursuit import PurePursuitController
    from repro.control.stanley import StanleyController

    registry = {
        "pure_pursuit": PurePursuitController,
        "stanley": StanleyController,
        "lqr": LqrController,
        "mpc": MpcController,
    }
    if name not in registry:
        raise ValueError(
            f"unknown lateral controller {name!r}; expected one of {sorted(registry)}"
        )
    return registry[name](**kwargs)
