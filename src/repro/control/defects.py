"""Controller implementation defects.

ADAssure debugs *control algorithms*, and not every anomaly is an attack:
regressions ship in controller code.  This module injects the classic
implementation bugs into any lateral controller:

* **gain error** — a tuning constant scaled (the 2x-gain regression);
* **sign flip** — inverted steering convention (the classic frame bug);
* **stale input** — the controller consumes an old pose (a latched message
  or mis-wired subscriber);
* **deadband** — small commands quantized to zero (unit truncation);
* **saturation** — output clamped far below the actuator limit (a wrong
  unit conversion on the limit constant).

Each defect perturbs only the controller's I/O, never the plant — so the
violation pattern the catalog sees is the bug's genuine closed-loop
signature.
"""

from __future__ import annotations

import abc
from collections import deque

from repro.control.base import LateralController, SteerDecision
from repro.geom.polyline import Polyline
from repro.geom.vec import Pose

__all__ = [
    "ControllerDefect",
    "GainErrorDefect",
    "SignFlipDefect",
    "StaleInputDefect",
    "DeadbandDefect",
    "SaturationDefect",
    "DefectiveController",
    "DEFECT_CLASSES",
    "make_defect",
]


class ControllerDefect(abc.ABC):
    """A bug model: transforms the controller's inputs and/or output."""

    name: str = "defect"

    def reset(self) -> None:
        """Clear per-run state."""

    def transform_input(self, pose: Pose, speed: float) -> tuple[Pose, float]:
        """Corrupt what the controller sees (default: nothing)."""
        return pose, speed

    def transform_output(self, steer: float) -> float:
        """Corrupt what the controller commands (default: nothing)."""
        return steer


class GainErrorDefect(ControllerDefect):
    """Output scaled by a constant factor (mis-tuned gain)."""

    name = "ctrl_gain_error"

    def __init__(self, factor: float = 3.0):
        if factor <= 0:
            raise ValueError("factor must be positive")
        self.factor = factor

    def transform_output(self, steer: float) -> float:
        return steer * self.factor


class SignFlipDefect(ControllerDefect):
    """Inverted steering sign (frame-convention bug)."""

    name = "ctrl_sign_flip"

    def transform_output(self, steer: float) -> float:
        return -steer


class StaleInputDefect(ControllerDefect):
    """The controller consumes the pose from ``delay_steps`` ago."""

    name = "ctrl_stale_input"

    def __init__(self, delay_steps: int = 16):
        if delay_steps < 1:
            raise ValueError("delay_steps must be >= 1")
        self.delay_steps = delay_steps
        self._history: deque[tuple[Pose, float]] = deque()

    def reset(self) -> None:
        self._history.clear()

    def transform_input(self, pose: Pose, speed: float) -> tuple[Pose, float]:
        self._history.append((pose, speed))
        if len(self._history) <= self.delay_steps:
            return self._history[0]
        return self._history.popleft()


class DeadbandDefect(ControllerDefect):
    """Commands below a threshold are truncated to zero."""

    name = "ctrl_deadband"

    def __init__(self, threshold: float = 0.05):
        if threshold <= 0:
            raise ValueError("threshold must be positive")
        self.threshold = threshold

    def transform_output(self, steer: float) -> float:
        return 0.0 if abs(steer) < self.threshold else steer


class SaturationDefect(ControllerDefect):
    """Output clamped far below the real actuator limit."""

    name = "ctrl_saturation"

    def __init__(self, limit: float = 0.02):
        if limit <= 0:
            raise ValueError("limit must be positive")
        self.limit = limit

    def transform_output(self, steer: float) -> float:
        return min(max(steer, -self.limit), self.limit)


class DefectiveController(LateralController):
    """A lateral controller with an injected implementation defect."""

    def __init__(self, inner: LateralController, defect: ControllerDefect):
        self.inner = inner
        self.defect = defect
        self.name = f"{inner.name}+{defect.name}"

    def reset(self) -> None:
        self.inner.reset()
        self.defect.reset()

    def compute_steer(
        self, pose: Pose, speed: float, route: Polyline, dt: float
    ) -> SteerDecision:
        pose, speed = self.defect.transform_input(pose, speed)
        decision = self.inner.compute_steer(pose, speed, route, dt)
        steer = self.defect.transform_output(decision.steer)
        return SteerDecision(
            steer=steer,
            cte=decision.cte,
            heading_err=decision.heading_err,
            station=decision.station,
        )


DEFECT_CLASSES: dict[str, type[ControllerDefect]] = {
    "ctrl_gain_error": GainErrorDefect,
    "ctrl_sign_flip": SignFlipDefect,
    "ctrl_stale_input": StaleInputDefect,
    "ctrl_deadband": DeadbandDefect,
    "ctrl_saturation": SaturationDefect,
}
"""Registry of defect classes (E13 iterates over these)."""


def make_defect(name: str, **kwargs) -> ControllerDefect:
    """Instantiate a defect by registry name."""
    if name not in DEFECT_CLASSES:
        raise ValueError(
            f"unknown defect {name!r}; expected one of {sorted(DEFECT_CLASSES)}"
        )
    return DEFECT_CLASSES[name](**kwargs)
