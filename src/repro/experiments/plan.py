"""Deferred-execution planner for off-grid runs: declare, batch, drain.

:func:`~repro.experiments.runner.run_scored` executes one off-grid
configuration at a time — correct, cached, and exactly the wrong shape
for the lockstep batch engine, which wants *groups* of compatible lanes.
This module turns every off-grid simulation site into a declarative
plan:

* experiments **declare** their whole configuration sweep up front
  (:meth:`ProbePlan.plan_scored` returns a lazy :class:`PlannedRun`
  handle per configuration);
* the plan **groups** pending runs by the batch compatibility key
  ``(scenario name, duration)`` — the same axes
  :func:`~repro.sim.batch.engine._check_compat` requires to agree —
  and **executes** each group through
  :func:`~repro.sim.batch.run_batch`, chunked at
  ``ADASSURE_BATCH_LANES`` lanes;
* any group the engine rejects falls back to per-run serial
  simulation — whole-group, so a single incompatible lane cannot
  poison its neighbours' results;
* every result **commits** through the params-keyed
  :class:`~repro.experiments.backend.ScoredResultStore` — the same
  memo + content-addressed disk-cache path ``run_scored`` uses, so a
  planned run and a serial ``run_scored`` of the same params are the
  same cache entry, and re-running a drained sweep simulates nothing.

Determinism contract: the batch engine is bit-identical to the serial
oracle (``tests/test_sim_batch_equivalence.py``), each experiment's lane
builder mirrors its serial ``simulate`` closure exactly, and cache keys
are the params dicts themselves — so draining through the planner
produces dict-equal experiment tables versus the serial path
(``tests/test_probe_batching.py`` pins this).

``--stats`` accounting: one :class:`~repro.experiments.stats.GridStats`
record per drain, with ``planned``/``plan_batched``/``plan_fallbacks``
counters next to the usual memo/disk/executed split.
"""

from __future__ import annotations

import time
from dataclasses import dataclass
from typing import Callable

from repro.core.checker import check_trace
from repro.core.verdicts import CheckReport
from repro.experiments.stats import STATS, GridStats
from repro.sim.engine import RunResult

__all__ = ["PlannedRun", "ProbePlan", "scenario_lane"]


def scenario_lane(scenario, controller: str = "pure_pursuit",
                  campaign=None, ekf_config=None, faults=None,
                  follower=None):
    """A batch :class:`~repro.sim.batch.LaneSpec` mirroring
    :func:`~repro.sim.engine.run_scenario`'s follower construction
    (scenario cruise profile, ACC iff the scenario has a lead).

    Pass ``follower`` to override the construction entirely — the E13
    defect harness wraps its lateral controller before the follower is
    built, and the lane must reproduce that object graph exactly.
    """
    from repro.control.acc import AccController
    from repro.control.base import make_lateral_controller
    from repro.control.follower import SpeedProfile, WaypointFollower
    from repro.sim.batch import LaneSpec
    if follower is None:
        follower = WaypointFollower(
            make_lateral_controller(controller),
            profile=SpeedProfile(cruise_speed=scenario.cruise_speed),
            acc=AccController() if scenario.lead is not None else None,
        )
    return LaneSpec(scenario=scenario, follower=follower,
                    campaign=campaign, ekf_config=ekf_config,
                    faults=faults)


@dataclass(slots=True)
class PlannedRun:
    """Lazy handle on one declared off-grid run.

    :meth:`result` drains the owning plan on first use; afterwards it is
    a plain accessor.  The pair is exactly what ``run_scored`` would
    have returned for the same params.
    """

    params: dict
    simulate: Callable[[], RunResult]
    lane: Callable[[], object] | None
    group: tuple
    _plan: "ProbePlan"
    _pair: tuple[RunResult, CheckReport] | None = None

    @property
    def done(self) -> bool:
        return self._pair is not None

    def result(self) -> tuple[RunResult, CheckReport]:
        if self._pair is None:
            self._plan.drain()
        assert self._pair is not None
        return self._pair


class ProbePlan:
    """Collects declared off-grid runs and drains them as batch groups.

    One plan per sweep: declare every configuration with
    :meth:`plan_scored`, then read results off the handles (the first
    read triggers :meth:`drain`).  Runs declared after a drain join the
    next drain — the plan is reusable, not one-shot.
    """

    def __init__(self, sim_engine: str | None = None,
                 lanes: int | None = None):
        from repro.experiments.runner import _batch_lanes, scored_store
        self._sim_engine_arg = sim_engine
        self.sim_engine: str | None = None
        """Engine of the most recent drain (chosen per drain, since auto
        selection depends on how many runs are actually pending)."""
        self.lanes = int(lanes) if lanes else _batch_lanes()
        self.store = scored_store()
        self._pending: list[PlannedRun] = []

    # -- declaration ----------------------------------------------------
    def plan_scored(self, params: dict, simulate: Callable[[], RunResult],
                    lane: Callable[[], object] | None = None,
                    group: tuple | None = None) -> PlannedRun:
        """Declare one run; same contract as
        :func:`~repro.experiments.runner.run_scored` plus batching.

        Args:
            params: JSON-serializable dict uniquely determining the run
                (the cache key — must cover every knob the closures
                close over).
            simulate: zero-argument serial closure — the oracle; runs on
                serial engines and whole-group fallback.
            lane: zero-argument closure building the equivalent batch
                :class:`~repro.sim.batch.LaneSpec` (see
                :func:`scenario_lane`).  ``None`` forces this run onto
                the serial path.
            group: batch compatibility key override; defaults to
                ``(params["scenario"], params["duration"])``.
        """
        if group is None:
            group = (params.get("scenario"), params.get("duration"))
        run = PlannedRun(params=params, simulate=simulate, lane=lane,
                         group=group, _plan=self)
        self._pending.append(run)
        return run

    @property
    def pending(self) -> int:
        return len(self._pending)

    # -- execution ------------------------------------------------------
    def drain(self) -> GridStats:
        """Execute every declared-but-unfinished run and commit results.

        Cache hits resolve first (memo → disk); the misses group by
        compatibility key and go through the batch engine in
        ``self.lanes``-wide chunks, each rejected chunk falling back to
        per-run serial simulation as a whole.  Records one
        :class:`~repro.experiments.stats.GridStats` into
        :data:`~repro.experiments.stats.STATS` per drain.
        """
        from repro.experiments.runner import choose_sim_engine
        todo, self._pending = self._pending, []
        wall_start = time.perf_counter()
        stats = GridStats(workers=1, grid_points=len(todo))
        self.sim_engine, stats.sim_engine_reason = choose_sim_engine(
            self._sim_engine_arg, len(todo))
        stats.sim_engine = self.sim_engine
        stats.planned = len(todo)

        from repro.sim.batch.controllers import dare_memo_counters
        dare0 = dare_memo_counters()

        misses: dict[tuple, list[PlannedRun]] = {}
        for run in todo:
            hit = self.store.resolve(run.params)
            if hit is not None:
                run._pair, source = hit
                if source == "memo":
                    stats.memo_hits += 1
                else:
                    stats.disk_hits += 1
                continue
            key = run.group if (run.lane is not None
                                and self.sim_engine == "batch") else None
            misses.setdefault(key, []).append(run)

        for key, runs in misses.items():
            if key is None:
                for run in runs:
                    self._run_serial(run, stats)
                continue
            for start in range(0, len(runs), self.lanes):
                chunk = runs[start:start + self.lanes]
                if len(chunk) < 2 or not self._run_batch(chunk, stats):
                    if len(chunk) >= 2:
                        stats.plan_fallbacks += 1
                    for run in chunk:
                        self._run_serial(run, stats)

        dare1 = dare_memo_counters()
        stats.dare_memo_hits = dare1["hits"] - dare0["hits"]
        stats.dare_memo_solves = dare1["solves"] - dare0["solves"]
        if self.store.cache is not None:
            stats.disk_errors = self.store.cache.counters.errors
        stats.wall_time = time.perf_counter() - wall_start
        STATS.record(stats)
        return stats

    def _run_batch(self, chunk: list[PlannedRun], stats: GridStats) -> bool:
        from repro.sim.batch import run_batch
        try:
            specs = [run.lane() for run in chunk]
            t0 = time.perf_counter()
            results = run_batch(specs)
        except Exception:
            return False
        sim_share = (time.perf_counter() - t0) / len(chunk)
        for run, result in zip(chunk, results):
            t1 = time.perf_counter()
            report = check_trace(result.trace)
            t2 = time.perf_counter()
            self.store.commit(run.params, (result, report))
            run._pair = (result, report)
            stats.phase_time["simulate"] += sim_share
            stats.phase_time["check"] += t2 - t1
        stats.executed += len(chunk)
        stats.plan_batched += len(chunk)
        stats.batch_groups += 1
        stats.batch_points += len(chunk)
        return True

    def _run_serial(self, run: PlannedRun, stats: GridStats) -> None:
        t0 = time.perf_counter()
        result = run.simulate()
        t1 = time.perf_counter()
        report = check_trace(result.trace)
        t2 = time.perf_counter()
        self.store.commit(run.params, (result, report))
        run._pair = (result, report)
        stats.executed += 1
        stats.phase_time["simulate"] += t1 - t0
        stats.phase_time["check"] += t2 - t1
