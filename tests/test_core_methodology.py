"""Tests for repro.core.methodology: gap analysis and the refinement loop."""

import pytest

from repro.attacks.campaign import standard_attack
from repro.core.catalog import CATALOG_IDS, CATALOG_STAGES
from repro.core.methodology import AnomalyCase, RefinementLoop
from repro.sim.engine import run_scenario

from conftest import make_trace, short_scenario


@pytest.fixture(scope="module")
def small_corpus():
    """Three attacked runs with known causes (module-scoped: simulation)."""
    cases = []
    for attack in ("gps_bias", "gps_freeze", "steer_offset"):
        scenario = short_scenario("s_curve", duration=35.0)
        result = run_scenario(scenario, controller="pure_pursuit",
                              campaign=standard_attack(attack, onset=12.0))
        cases.append(AnomalyCase(trace=result.trace, true_cause=attack))
    return cases


class TestRefinementLoop:
    def test_empty_corpus_rejected(self):
        with pytest.raises(ValueError):
            RefinementLoop([])

    def test_one_iteration_per_stage(self, small_corpus):
        iterations = RefinementLoop(small_corpus).run()
        assert len(iterations) == len(CATALOG_STAGES)

    def test_assertion_sets_grow(self, small_corpus):
        iterations = RefinementLoop(small_corpus).run()
        sizes = [len(it.assertion_ids) for it in iterations]
        assert sizes == sorted(sizes)
        assert set(iterations[-1].assertion_ids) == set(CATALOG_IDS)

    def test_undiagnosed_never_increases(self, small_corpus):
        iterations = RefinementLoop(small_corpus).run()
        undiagnosed = [it.undiagnosed for it in iterations]
        assert all(b <= a for a, b in zip(undiagnosed, undiagnosed[1:]))

    def test_full_catalog_diagnoses_corpus(self, small_corpus):
        final = RefinementLoop(small_corpus).run()[-1]
        assert final.undiagnosed == 0
        assert final.diagnosed == final.total == len(small_corpus)

    def test_gap_analysis_fields(self, small_corpus):
        loop = RefinementLoop(small_corpus)
        gap = loop.analyze_case(small_corpus[0], tuple(CATALOG_IDS))
        assert gap.true_cause == "gps_bias"
        assert gap.detected
        assert gap.diagnosed
        assert not gap.is_gap
        assert "A5" in gap.fired_ids or "A4" in gap.fired_ids

    def test_behaviour_only_stage_cannot_diagnose_steer_offset(self,
                                                               small_corpus):
        # steer_offset is invisible to behaviour assertions by design: the
        # closed loop compensates.  The first stage must report it as a gap.
        loop = RefinementLoop(small_corpus)
        first_stage_ids = CATALOG_STAGES["behavioural"]
        gap = loop.analyze_case(small_corpus[2], first_stage_ids)
        assert gap.is_gap

    def test_nominal_case_counts_as_explained_when_silent(self):
        trace = make_trace(600)
        loop = RefinementLoop([AnomalyCase(trace=trace, true_cause="none")])
        final = loop.run()[-1]
        # No assertion fires; diagnosis of 'none' requires detection=False
        # handling: the case is undetected but 'none' is its true cause.
        gap = final.gaps[0]
        assert not gap.detected
