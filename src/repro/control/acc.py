"""Adaptive cruise control: constant-time-gap car following.

The classic CTG law used on production ACC systems:

    gap_desired = d0 + tau * v_ego
    accel = k_gap * (gap - gap_desired) + k_rate * range_rate

The follower arbitrates ``min(speed-tracking accel, ACC accel)``, so ACC
only ever *restricts* the longitudinal command — the standard safety
arbitration.  The controller consumes the (attackable) radar track, which
is what makes radar spoofing visible in its behaviour.
"""

from __future__ import annotations

from dataclasses import dataclass

__all__ = ["AccConfig", "AccController"]


@dataclass(frozen=True, slots=True)
class AccConfig:
    """Constant-time-gap ACC parameters."""

    time_gap: float = 1.5
    """Desired time headway, seconds."""
    standstill_gap: float = 5.0
    """Desired gap at v=0 (d0), meters."""
    k_gap: float = 0.25
    """Gap-error gain, 1/s^2."""
    k_rate: float = 0.6
    """Range-rate gain, 1/s."""
    accel_max: float = 2.0
    """ACC acceleration authority, m/s^2."""
    brake_max: float = 6.0
    """ACC braking authority, m/s^2."""

    def __post_init__(self) -> None:
        if self.time_gap <= 0 or self.standstill_gap <= 0:
            raise ValueError("time_gap and standstill_gap must be positive")
        if min(self.k_gap, self.k_rate, self.accel_max, self.brake_max) <= 0:
            raise ValueError("gains and authorities must be positive")


class AccController:
    """Stateless CTG car-following law over radar range/range-rate."""

    name = "acc_ctg"

    def __init__(self, config: AccConfig | None = None):
        self.config = config or AccConfig()

    def desired_gap(self, ego_speed: float) -> float:
        """The CTG setpoint at the given ego speed."""
        return self.config.standstill_gap + self.config.time_gap * ego_speed

    def compute_accel(self, range_m: float, range_rate: float,
                      ego_speed: float) -> float:
        """ACC acceleration command from the latest radar track."""
        cfg = self.config
        gap_error = range_m - self.desired_gap(ego_speed)
        accel = cfg.k_gap * gap_error + cfg.k_rate * range_rate
        return _clamp(accel, -cfg.brake_max, cfg.accel_max)


def _clamp(value: float, lo: float, hi: float) -> float:
    return lo if value < lo else hi if value > hi else value
