"""E2 / Table 2 — detection latency per attack class.

Time from attack onset to the first assertion violation, overall and for
the fastest consistency vs. fastest behaviour assertion.  Expected shape:
cross-channel consistency assertions detect well before the behavioural
outcome assertions, because they do not wait for the vehicle to deviate.
"""

from __future__ import annotations

import statistics

from repro.core.catalog import CATALOG_IDS, make_assertion
from repro.experiments.config import ExperimentConfig
from repro.experiments.runner import run_grid
from repro.experiments.tables import Table

__all__ = ["build_latency_table"]

_CATEGORY_OF = {aid: make_assertion(aid).category for aid in CATALOG_IDS}


def build_latency_table(config: ExperimentConfig | None = None,
                        workers: int | None = None) -> Table:
    """Per-attack detection latency (median over seeds), split by family."""
    config = config or ExperimentConfig.full()
    runs = run_grid(
        scenarios=(config.scenario,),
        controllers=("pure_pursuit",),
        attacks=tuple(config.attacks),
        seeds=config.seeds,
        onset=config.attack_onset,
        duration=config.duration,
        workers=workers,
    )

    table = Table(
        title="Table 2 (E2): detection latency from attack onset "
              f"(scenario={config.scenario}, controller=pure_pursuit)",
        columns=["attack", "overall [s]", "consistency [s]", "behaviour [s]",
                 "first assertion"],
    )

    by_attack: dict[str, list] = {}
    for run in runs:
        by_attack.setdefault(run.attack, []).append(run)

    for attack in config.attacks:
        group = by_attack[attack]
        overall, consistency, behaviour, firsts = [], [], [], []
        for run in group:
            onset = run.result.trace.attack_onset()
            if onset is None:
                continue
            lat = run.report.detection_latency(onset)
            if lat is not None:
                overall.append(lat)
            fam_lat = {"consistency": [], "behaviour": []}
            first_aid, first_t = None, None
            for aid in CATALOG_IDS:
                l_a = run.report.detection_latency(onset, aid)
                if l_a is None:
                    continue
                category = _CATEGORY_OF[aid]
                if category == "consistency":
                    fam_lat["consistency"].append(l_a)
                elif category in ("behaviour", "liveness"):
                    fam_lat["behaviour"].append(l_a)
                if first_t is None or l_a < first_t:
                    first_aid, first_t = aid, l_a
            if fam_lat["consistency"]:
                consistency.append(min(fam_lat["consistency"]))
            if fam_lat["behaviour"]:
                behaviour.append(min(fam_lat["behaviour"]))
            if first_aid is not None:
                firsts.append(first_aid)

        def med(values: list) -> str:
            return f"{statistics.median(values):.1f}" if values else "-"

        first_mode = max(set(firsts), key=firsts.count) if firsts else "-"
        table.add_row(attack, med(overall), med(consistency), med(behaviour),
                      first_mode)

    table.add_note("'-' = the family never fired for that attack; "
                   "medians over seeds.")
    return table


def main() -> None:
    print(build_latency_table().render())


if __name__ == "__main__":
    main()
