"""Bench E11 (extension) — Table 7: diagnosis under concurrent attacks."""

from conftest import run_and_print

from repro.experiments import build_multi_attack_table


def test_e11_multi_attack(benchmark, quick_config):
    table = run_and_print(benchmark, build_multi_attack_table, quick_config)
    rows = {r[0]: r for r in table.rows}

    def frac(cell):
        num, den = cell.split("/")
        return int(num) / int(den)

    # Extension-shape claims: the channel-disjoint pair superposes cleanly
    # (both causes in the top 2), most pairs keep both causes in the top 3
    # despite single-cause ranking, and the multi-cause explain-away loop
    # recovers the exact injected set for every pair.
    assert frac(rows["imu_gyro_bias+steer_offset"][2]) == 1.0
    top3 = [frac(r[3]) for r in table.rows]
    assert sum(top3) / len(top3) >= 0.6
    for row in table.rows:
        assert frac(row[4]) == 1.0, f"{row[0]}: multi-cause set not exact"
