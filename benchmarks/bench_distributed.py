"""Bench — distributed campaign backend vs. single-host serial.

As a pytest-benchmark (``pytest benchmarks/bench_distributed.py
--benchmark-only``) this times one small campaign through the
lease-claimed worker fleet and asserts the backend's invariants held
(convergence, exactly-once cache entries).

As a script it produces the committed artifact::

    PYTHONPATH=src python benchmarks/bench_distributed.py --workers 2

writing ``BENCH_distributed.json`` with cold serial vs. cold distributed
wall times, the shard/lease/heartbeat counters, and a chaos pass (one
worker SIGKILLed mid-shard) proving the campaign still converges to the
same verdict count.
"""

import os
import tempfile

GRID = dict(scenarios=("s_curve",), controllers=("pure_pursuit",),
            attacks=("none", "gps_bias", "odom_scale"), seeds=(1, 7),
            onset=5.0, duration=8.0)
N_POINTS = 6


def _run(executor, workers=2, **overrides):
    from repro.experiments.cache import RunCache
    from repro.experiments.runner import clear_cache, run_grid
    from repro.experiments.stats import STATS

    clear_cache()
    STATS.reset()
    if executor == "distributed":
        runs = run_grid(executor="distributed", dist_workers=workers,
                        **GRID, **overrides)
    else:
        runs = run_grid(workers=1, executor="serial", **GRID, **overrides)
    return runs, STATS.last, RunCache().stats()["entries"]


def test_distributed_small(benchmark, tmp_path, monkeypatch):
    """One small campaign through a two-worker fleet."""
    monkeypatch.setenv("ADASSURE_CACHE_DIR", str(tmp_path))
    monkeypatch.delenv("ADASSURE_CACHE", raising=False)

    runs, stats, entries = benchmark.pedantic(
        lambda: _run("distributed", workers=2, shard_points=2),
        rounds=1, iterations=1)
    print()
    print(f"points: {len(runs)}  adopted: {stats.dist_points}  "
          f"fallback-executed: {stats.executed}  "
          f"shards: {stats.shards_claimed}/{stats.shards_total}")
    assert len(runs) == N_POINTS          # converged
    assert entries == N_POINTS            # exactly once
    assert stats.executor == "distributed"
    assert stats.dist_points + stats.executed == N_POINTS


def _main(argv=None) -> int:
    """Write ``BENCH_distributed.json`` (the committed artifact)."""
    import argparse
    import json
    import platform
    import time
    from pathlib import Path

    parser = argparse.ArgumentParser(
        prog="python benchmarks/bench_distributed.py",
        description=_main.__doc__)
    parser.add_argument("--workers", type=int, default=2)
    parser.add_argument("--shard-points", type=int, default=2)
    parser.add_argument("--output", default="BENCH_distributed.json")
    args = parser.parse_args(argv)

    timings: dict = {}
    counters: dict = {}
    old_cache = os.environ.get("ADASSURE_CACHE_DIR")
    old_chaos = os.environ.pop("ADASSURE_CHAOS_KILL_AFTER", None)
    try:
        def measure(label, executor, chaos=None, **overrides):
            with tempfile.TemporaryDirectory(
                    prefix="adassure-bench-dist-") as tmp:
                os.environ["ADASSURE_CACHE_DIR"] = tmp
                if chaos is not None:
                    os.environ["ADASSURE_CHAOS_KILL_AFTER"] = str(chaos)
                try:
                    t0 = time.perf_counter()
                    runs, stats, entries = _run(
                        executor, workers=args.workers, **overrides)
                    timings[label] = round(time.perf_counter() - t0, 4)
                finally:
                    os.environ.pop("ADASSURE_CHAOS_KILL_AFTER", None)
            assert len(runs) == N_POINTS, f"{label}: campaign lost points"
            assert entries == N_POINTS, f"{label}: not exactly-once"
            counters[label] = {
                "executed_locally": stats.executed,
                "adopted_from_workers": stats.dist_points,
                "shards_total": stats.shards_total,
                "shards_claimed": stats.shards_claimed,
                "shards_reclaimed": stats.shards_reclaimed,
                "heartbeats": stats.heartbeats,
            }
            print(f"{label:<22} {timings[label]:8.2f}s  "
                  f"(adopted {stats.dist_points}, "
                  f"fallback {stats.executed})")

        measure("cold_serial", "serial")
        measure("cold_distributed", "distributed",
                shard_points=args.shard_points)
        # Chaos pass: every worker SIGKILLs itself after 2 commits; the
        # campaign must still converge (serial fallback) exactly-once.
        measure("chaos_killed_workers", "distributed", chaos=2,
                shard_points=args.shard_points)
    finally:
        if old_cache is None:
            os.environ.pop("ADASSURE_CACHE_DIR", None)
        else:
            os.environ["ADASSURE_CACHE_DIR"] = old_cache
        if old_chaos is not None:
            os.environ["ADASSURE_CHAOS_KILL_AFTER"] = old_chaos

    payload = {
        "host": {
            "python": platform.python_version(),
            "machine": platform.machine(),
            "cpu_count": os.cpu_count(),
        },
        "config": {
            "grid_points": N_POINTS,
            "dist_workers": args.workers,
            "shard_points": args.shard_points,
        },
        "timings_s": timings,
        "counters": counters,
        "speedups": {
            "distributed_vs_serial_cold": round(
                timings["cold_serial"] / timings["cold_distributed"], 2),
        },
        "note": (
            "worker subprocesses pay interpreter+import startup per "
            "process; the distributed backend wins only when the grid is "
            "large enough to amortize it (or spans hosts). The chaos row "
            "measures convergence cost with the whole fleet SIGKILLed "
            "mid-shard."
        ),
    }
    out = Path(args.output)
    out.write_text(json.dumps(payload, indent=2) + "\n", encoding="utf-8")
    print(f"wrote {out}")
    return 0


if __name__ == "__main__":
    raise SystemExit(_main())
