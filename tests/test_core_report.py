"""Tests for repro.core.report rendering."""

from repro.core.checker import check_trace
from repro.core.diagnosis import diagnose
from repro.core.report import render_check_report, render_diagnosis


class TestRenderCheckReport:
    def test_nominal_reports_clean(self, nominal_run):
        report = check_trace(nominal_run.trace)
        text = render_check_report(report)
        assert "no anomaly detected" in text
        assert "s_curve" in text

    def test_attacked_lists_violations(self, gps_bias_run):
        report = check_trace(gps_bias_run.trace)
        text = render_check_report(report)
        assert "fired" in text
        assert "violation episodes" in text
        assert "A5" in text or "A4" in text

    def test_truncation_note(self, gps_bias_run):
        report = check_trace(gps_bias_run.trace)
        text = render_check_report(report, max_violations=1)
        if len(report.violations) > 1:
            assert "more" in text


class TestRenderDiagnosis:
    def test_top_cause_marked(self, gps_bias_run):
        report = check_trace(gps_bias_run.trace)
        result = diagnose(report)
        text = render_diagnosis(result)
        assert "=>" in text
        assert result.top().cause in text

    def test_supporting_evidence_listed(self, gps_bias_run):
        report = check_trace(gps_bias_run.trace)
        text = render_diagnosis(diagnose(report))
        assert "supported by" in text
