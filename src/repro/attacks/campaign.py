"""Attack campaigns: named, parameterized attack instantiations.

The experiment grid runs the same scenarios under each of the *standard
attack classes* below.  ``intensity`` is a dimensionless knob in (0, ~2]
that scales each class's physical magnitude around its nominal value
(1.0 = the headline configuration used by the detection-matrix table;
the intensity sweep of experiment E6 varies it).
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.attacks.actuator import SteeringOffsetAttack
from repro.attacks.base import Attack, AttackWindow
from repro.attacks.channel import CommandDelayAttack
from repro.attacks.compass import CompassOffsetAttack
from repro.attacks.gps import (
    GpsBiasAttack,
    GpsDriftAttack,
    GpsFreezeAttack,
    GpsNoiseAttack,
)
from repro.attacks.imu import ImuGyroBiasAttack
from repro.attacks.odometry import OdometryScaleAttack
from repro.attacks.radar import (
    RadarBlindAttack,
    RadarGhostAttack,
    RadarRangeScaleAttack,
)

__all__ = [
    "AttackCampaign",
    "ATTACK_CLASSES",
    "campaign_classes",
    "make_attack",
    "reparameterized_attack",
    "standard_attack",
]

_DEFAULT_ONSET = 15.0


@dataclass(slots=True)
class AttackCampaign:
    """A labeled set of attacks to run together in one scenario."""

    label: str
    attacks: list[Attack] = field(default_factory=list)

    def reset(self) -> None:
        for attack in self.attacks:
            attack.reset()

    @staticmethod
    def none() -> "AttackCampaign":
        """The nominal (attack-free) campaign."""
        return AttackCampaign(label="none", attacks=[])


def _gps_bias(intensity: float, window: AttackWindow) -> Attack:
    # Nominal: 4 m lateral spoof — enough to drag the vehicle off lane.
    return GpsBiasAttack(offset_x=0.0, offset_y=4.0 * intensity, window=window)


def _gps_drift(intensity: float, window: AttackWindow) -> Attack:
    # Nominal: 0.25 m/s lateral drag — stealthy, below per-fix noise.
    return GpsDriftAttack(rate_x=0.0, rate_y=0.25 * intensity, window=window)


def _gps_freeze(intensity: float, window: AttackWindow) -> Attack:
    # Freeze has no magnitude; intensity is accepted for interface symmetry.
    return GpsFreezeAttack(window=window)


def _gps_noise(intensity: float, window: AttackWindow) -> Attack:
    return GpsNoiseAttack(extra_std=3.0 * intensity, window=window)


def _imu_gyro_bias(intensity: float, window: AttackWindow) -> Attack:
    # Nominal: 0.06 rad/s injected gyro bias (~3.4 deg/s).
    return ImuGyroBiasAttack(bias=0.06 * intensity, window=window)


def _odom_scale(intensity: float, window: AttackWindow) -> Attack:
    # Nominal: report 35% less speed than real (PID overspeeds).
    scale = max(1.0 - 0.35 * intensity, 0.0)
    return OdometryScaleAttack(scale=scale, window=window)


def _compass_offset(intensity: float, window: AttackWindow) -> Attack:
    return CompassOffsetAttack(offset=0.25 * intensity, window=window)


def _steer_offset(intensity: float, window: AttackWindow) -> Attack:
    # Nominal: 0.06 rad (~3.4 deg) steering offset at the actuator.
    return SteeringOffsetAttack(offset=0.06 * intensity, window=window)


def _cmd_delay(intensity: float, window: AttackWindow) -> Attack:
    return CommandDelayAttack(delay_steps=max(int(round(8 * intensity)), 1),
                              window=window)


def _radar_scale(intensity: float, window: AttackWindow) -> Attack:
    # Nominal: lead reported 2.5x farther than it is (ACC tailgates well
    # below the one-second headway rule).
    return RadarRangeScaleAttack(scale=1.0 + 1.5 * intensity, window=window)


def _radar_ghost(intensity: float, window: AttackWindow) -> Attack:
    # Nominal: phantom target 15 m closer than the real lead.
    return RadarGhostAttack(offset=15.0 * intensity, window=window)


def _radar_blind(intensity: float, window: AttackWindow) -> Attack:
    # Blinding has no magnitude; intensity accepted for interface symmetry.
    return RadarBlindAttack(window=window)


ATTACK_CLASSES: dict[str, object] = {
    "gps_bias": _gps_bias,
    "gps_drift": _gps_drift,
    "gps_freeze": _gps_freeze,
    "gps_noise": _gps_noise,
    "imu_gyro_bias": _imu_gyro_bias,
    "odom_scale": _odom_scale,
    "compass_offset": _compass_offset,
    "steer_offset": _steer_offset,
    "cmd_delay": _cmd_delay,
    "radar_scale": _radar_scale,
    "radar_ghost": _radar_ghost,
    "radar_blind": _radar_blind,
}
"""Registry of the standard attack classes used across the evaluation.

The ``radar_*`` classes only have an effect in car-following scenarios
(a lead vehicle must be present); they are evaluated by E12 rather than
the main grid."""


def make_attack(
    attack_class: str,
    intensity: float = 1.0,
    onset: float = _DEFAULT_ONSET,
    end: float = float("inf"),
) -> Attack:
    """Instantiate a standard attack class at the given intensity.

    Args:
        attack_class: a key of :data:`ATTACK_CLASSES`.
        intensity: dimensionless magnitude knob (1.0 = nominal).
        onset: attack start time, seconds into the run.
        end: attack end time (default: never ends).
    """
    if attack_class not in ATTACK_CLASSES:
        raise ValueError(
            f"unknown attack class {attack_class!r}; "
            f"expected one of {sorted(ATTACK_CLASSES)}"
        )
    if intensity <= 0:
        raise ValueError("intensity must be positive")
    window = AttackWindow(start=onset, end=end)
    return ATTACK_CLASSES[attack_class](intensity, window)


def standard_attack(
    attack_class: str, intensity: float = 1.0, onset: float = _DEFAULT_ONSET
) -> AttackCampaign:
    """A single-attack campaign labeled with its class name."""
    if attack_class == "none":
        return AttackCampaign.none()
    return AttackCampaign(
        label=attack_class,
        attacks=[make_attack(attack_class, intensity=intensity, onset=onset)],
    )


def campaign_classes(label: str) -> tuple[str, ...]:
    """Attack class names encoded in a campaign label (``"a+b"`` → ``(a, b)``).

    Inverse of the ``+``-joined labeling used by :func:`standard_attack`
    and :func:`combined_attack`; the counterfactual ablation uses it to
    decompose a violating run's campaign back into re-parameterizable
    channels.  ``"none"`` (and the empty label) decode to no classes.
    """
    if label in ("", "none"):
        return ()
    classes = tuple(part for part in label.split("+") if part)
    for cls in classes:
        if cls not in ATTACK_CLASSES:
            raise ValueError(
                f"unknown attack class {cls!r} in campaign label {label!r}; "
                f"expected classes from {sorted(ATTACK_CLASSES)}"
            )
    return classes


def reparameterized_attack(
    label: str,
    intensity: float = 1.0,
    onset: float = _DEFAULT_ONSET,
    end: float = float("inf"),
    classes: tuple[str, ...] | list[str] | None = None,
) -> AttackCampaign:
    """Rebuild a standard/combined campaign with an edited window, magnitude
    or channel subset — the counterfactual probe hook.

    Args:
        label: the original campaign label (``"gps_bias"``,
            ``"gps_bias+imu_gyro_bias"``, or ``"none"``).
        intensity: magnitude knob for every surviving class.
        onset: injection start, seconds.
        end: injection end (default: never ends, matching
            :func:`standard_attack`).
        classes: optional channel subset to keep; must be a subset of the
            label's classes.  ``None`` keeps them all.

    With the label's own parameters this reconstructs the original
    campaign object-for-object, which is what makes an unchanged
    counterfactual re-run bit-identical to the cached original.
    """
    base = campaign_classes(label)
    if classes is not None:
        keep = set(classes)
        unknown = keep - set(base)
        if unknown:
            raise ValueError(
                f"classes {sorted(unknown)} are not part of campaign "
                f"{label!r} (classes: {list(base)})"
            )
        base = tuple(cls for cls in base if cls in keep)
    if not base:
        return AttackCampaign.none()
    return AttackCampaign(
        label="+".join(base),
        attacks=[make_attack(cls, intensity=intensity, onset=onset, end=end)
                 for cls in base],
    )


def combined_attack(
    attack_classes: list[str] | tuple[str, ...],
    intensity: float = 1.0,
    onset: float = _DEFAULT_ONSET,
) -> AttackCampaign:
    """A campaign with several attack classes active simultaneously.

    Models a coordinated adversary (or independent concurrent faults);
    used by the E11 extension experiment.  The campaign label joins the
    class names with ``+``.
    """
    if not attack_classes:
        raise ValueError("combined_attack needs at least one attack class")
    attacks = [make_attack(cls, intensity=intensity, onset=onset)
               for cls in attack_classes]
    return AttackCampaign(label="+".join(attack_classes), attacks=attacks)
