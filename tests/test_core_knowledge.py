"""Tests for repro.core.knowledge."""

import pytest

from repro.core.catalog import CATALOG_IDS
from repro.core.knowledge import (
    FALSE_POSITIVE_RATE,
    CauseProfile,
    KnowledgeBase,
    default_knowledge_base,
)


class TestCauseProfile:
    def test_prob_floor(self):
        p = CauseProfile(cause="x", description="", fire_probs={"A1": 0.9})
        assert p.prob("A1") == 0.9
        assert p.prob("A2") == FALSE_POSITIVE_RATE


class TestKnowledgeBase:
    def test_duplicate_causes_rejected(self):
        p = CauseProfile(cause="x", description="")
        with pytest.raises(ValueError):
            KnowledgeBase([p, p])

    def test_profile_lookup(self):
        kb = default_knowledge_base()
        assert kb.profile("gps_bias").cause == "gps_bias"
        with pytest.raises(KeyError):
            kb.profile("nope")

    def test_add_extends(self):
        kb = default_knowledge_base()
        kb.add(CauseProfile(cause="new_fault", description="",
                            fire_probs={"A1": 0.5}))
        assert "new_fault" in kb.causes
        with pytest.raises(ValueError):
            kb.add(CauseProfile(cause="new_fault", description=""))

    def test_restricted_drops_unknown_assertions(self):
        kb = default_knowledge_base()
        small = kb.restricted(frozenset({"A1"}))
        profile = small.profile("gps_bias")
        assert set(profile.fire_probs) <= {"A1"}
        # Restriction does not mutate the original.
        assert "A5" in kb.profile("gps_bias").fire_probs


class TestDefaultKnowledgeBase:
    def test_covers_standard_attacks(self):
        kb = default_knowledge_base()
        expected = {
            "none", "gps_bias", "gps_drift", "gps_freeze", "gps_noise",
            "imu_gyro_bias", "odom_scale", "compass_offset", "steer_offset",
            "cmd_delay", "radar_scale", "radar_ghost", "radar_blind",
            "sensor_fault",
        }
        assert set(kb.causes) == expected

    def test_profiles_reference_real_assertions(self):
        kb = default_knowledge_base()
        for profile in kb.profiles():
            for aid in profile.fire_probs:
                assert aid in CATALOG_IDS, f"{profile.cause} references {aid}"

    def test_probabilities_valid(self):
        for profile in default_knowledge_base().profiles():
            for p in profile.fire_probs.values():
                assert 0.0 < p < 1.0

    def test_each_cause_has_distinct_signature(self):
        # No two causes may share the same high-probability assertion set —
        # otherwise they are not distinguishable in principle.
        kb = default_knowledge_base()
        signatures = {}
        for profile in kb.profiles():
            if profile.cause == "none":
                continue
            sig = frozenset(a for a, p in profile.fire_probs.items() if p >= 0.6)
            assert sig not in signatures.values(), (
                f"{profile.cause} duplicates another cause's signature"
            )
            signatures[profile.cause] = sig
