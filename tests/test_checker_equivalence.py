"""Differential tests: vectorized checker vs the per-step oracle.

The vectorized engine (``check_trace(engine="vector")``) must reproduce
the per-step state machine (``engine="step"``, i.e. the
:class:`~repro.core.monitor.OnlineMonitor`) *exactly* — same
:class:`AssertionSummary` fields, same :class:`Violation` episodes, same
floats bit for bit.  Two layers of evidence:

* property-based margin streams (hypothesis) drive the shared episode
  state machine through arbitrary debounce/NaN/applicability patterns;
* a full attack x fault x controller grid of real simulated runs is
  checked with both engines against the complete catalog.
"""

import math

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.catalog import default_catalog
from repro.core.checker import check_trace
from repro.core.dsl import BoundAssertion, FunctionAssertion
from repro.sim.engine import run_scenario
from repro.sim.scenario import acc_scenario, standard_scenarios

from conftest import make_trace, short_scenario

# ---------------------------------------------------------------------------
# Property-based margin streams
# ---------------------------------------------------------------------------

# One stream element is either None (assertion not applicable at that
# step) or a margin value; NaN is legal and means "applicable but the
# margin computation degenerated" (it counts as a non-violating sample,
# matching `margin < 0` being False for NaN).
margin_values = st.one_of(
    st.none(),
    st.just(float("nan")),
    st.floats(min_value=-3.0, max_value=3.0, allow_nan=False),
    # Cluster around the threshold where episode logic is most sensitive.
    st.sampled_from([-1e-9, 0.0, 1e-9, -0.5, 0.5]),
)
margin_streams = st.lists(margin_values, min_size=0, max_size=120)
debounces = st.tuples(st.integers(min_value=1, max_value=5),
                      st.integers(min_value=1, max_value=12))


def stream_assertion(debounce_on, debounce_off, settle_time=0.0,
                     vectorized=True):
    """An assertion whose margin is read verbatim from ``cte_true``,
    with ``gps_fresh=False`` marking inapplicable steps."""

    def fn(record, state):
        if not record.gps_fresh:
            return None
        return record.cte_true

    def fn_array(cols):
        return cols.cte_true, cols.gps_fresh

    return FunctionAssertion(
        "ST1", "margin stream", fn,
        fn_array=fn_array if vectorized else None,
        settle_time=settle_time,
        debounce_on=debounce_on, debounce_off=debounce_off,
    )


def stream_trace(stream):
    def mutate(step, record):
        value = stream[step]
        if value is None:
            return record.replace(gps_fresh=False)
        return record.replace(gps_fresh=True, cte_true=value)

    return make_trace(len(stream), mutate=mutate)


def assert_reports_identical(report_a, report_b):
    assert report_a.summaries == report_b.summaries
    assert report_a.violations == report_b.violations
    assert report_a.duration == report_b.duration


class TestPropertyStreams:
    @settings(max_examples=200, deadline=None)
    @given(stream=margin_streams, debounce=debounces)
    def test_vectorized_matches_step_oracle(self, stream, debounce):
        trace = stream_trace(stream)
        on, off = debounce
        vec = check_trace(trace, [stream_assertion(on, off)],
                          engine="vector")
        step = check_trace(trace, [stream_assertion(on, off)],
                           engine="step")
        assert_reports_identical(vec, step)

    @settings(max_examples=100, deadline=None)
    @given(stream=margin_streams, debounce=debounces,
           settle=st.sampled_from([0.0, 0.2, 1.0]))
    def test_sequential_fallback_matches_step_oracle(self, stream, debounce,
                                                     settle):
        # Without fn_array the offline engine walks margin() per record —
        # the fallback path every stateful catalog assertion uses.
        trace = stream_trace(stream)
        on, off = debounce
        vec = check_trace(
            trace, [stream_assertion(on, off, settle, vectorized=False)],
            engine="vector")
        step = check_trace(
            trace, [stream_assertion(on, off, settle, vectorized=False)],
            engine="step")
        assert_reports_identical(vec, step)

    @settings(max_examples=100, deadline=None)
    @given(stream=st.lists(
        st.floats(min_value=-20.0, max_value=20.0, allow_nan=False),
        min_size=0, max_size=100))
    def test_bound_assertion_with_scaling(self, stream):
        trace = make_trace(
            len(stream),
            mutate=lambda step, r: r.replace(cte_true=stream[step]))

        def bound():
            return BoundAssertion("B1", "cte bound", "cte_true", 2.5,
                                  debounce_on=2, debounce_off=4).scale_bound(1.7)

        vec = check_trace(trace, [bound()], engine="vector")
        step = check_trace(trace, [bound()], engine="step")
        assert_reports_identical(vec, step)


# ---------------------------------------------------------------------------
# Full-grid differential test on real simulated runs
# ---------------------------------------------------------------------------

GRID = [
    # (attack, fault, controller, supervised)
    ("none", None, "pure_pursuit", False),
    ("gps_bias", None, "pure_pursuit", False),
    ("gps_freeze", None, "stanley", False),
    ("radar_scale", None, "mpc", False),
    ("steer_offset", None, "lqr", False),
    ("none", "imu_dropout", "pure_pursuit", False),
    ("gps_bias", "radar_dropout", "stanley", False),
    ("none", "compass_nan", "pure_pursuit", True),
    ("none", "gps_dropout+compass_dropout", "pure_pursuit", True),
]


def _simulate(attack, fault, controller, supervised):
    from repro.attacks.campaign import standard_attack
    from repro.faults.campaign import combined_fault, standard_fault

    campaign = (standard_attack(attack, onset=4.0)
                if attack != "none" else None)
    faults = None
    if fault is not None:
        classes = fault.split("+")
        faults = (combined_fault(classes, onset=5.0) if len(classes) > 1
                  else standard_fault(fault, onset=5.0))
    return run_scenario(short_scenario("s_curve", duration=14.0),
                        controller=controller, campaign=campaign,
                        faults=faults, supervised=supervised)


class TestFullGrid:
    @pytest.mark.parametrize("attack,fault,controller,supervised", GRID)
    def test_engines_agree_on_full_catalog(self, attack, fault, controller,
                                           supervised):
        result = _simulate(attack, fault, controller, supervised)
        vec = check_trace(result.trace, default_catalog(), engine="vector")
        step = check_trace(result.trace, default_catalog(), engine="step")
        assert_reports_identical(vec, step)
        # Spot-check nothing silently became NaN on the vector path.
        for summary in vec.summaries.values():
            assert not math.isnan(summary.worst_margin)

    def test_engines_agree_on_acc_scenario(self):
        for attack in ("none", "radar_ghost", "radar_blind"):
            from repro.attacks.campaign import standard_attack

            campaign = (standard_attack(attack, onset=4.0)
                        if attack != "none" else None)
            scenario = acc_scenario(seed=7, duration=14.0)
            result = run_scenario(scenario, campaign=campaign)
            vec = check_trace(result.trace, default_catalog(),
                              engine="vector")
            step = check_trace(result.trace, default_catalog(),
                               engine="step")
            assert_reports_identical(vec, step)


# ---------------------------------------------------------------------------
# Engine selection plumbing
# ---------------------------------------------------------------------------

class TestEngineSelection:
    def test_unknown_engine_rejected(self):
        with pytest.raises(ValueError, match="unknown checker engine"):
            check_trace(make_trace(5), [], engine="quantum")

    def test_env_var_selects_engine(self, monkeypatch):
        trace = make_trace(20)
        monkeypatch.setenv("ADASSURE_CHECKER", "step")
        via_env = check_trace(trace, default_catalog())
        monkeypatch.delenv("ADASSURE_CHECKER")
        default = check_trace(trace, default_catalog())
        assert_reports_identical(via_env, default)

    def test_env_var_garbage_rejected(self, monkeypatch):
        monkeypatch.setenv("ADASSURE_CHECKER", "warp")
        with pytest.raises(ValueError, match="unknown checker engine"):
            check_trace(make_trace(5), [])

    def test_duplicate_assertion_ids_rejected(self):
        pair = [BoundAssertion("D1", "a", "cte_true", 1.0),
                BoundAssertion("D1", "b", "cte_true", 2.0)]
        with pytest.raises(ValueError, match="duplicate"):
            check_trace(make_trace(5), pair, engine="vector")
