"""Crash tolerance of the grid runner.

The fault-tolerance contract of :func:`repro.experiments.runner.run_grid`:
a poisoned worker, a hung point, a flaky point, or an interrupt must not
cost a campaign more than the affected points — and never its
correctness.  These tests sabotage ``runner._execute_point`` through
monkeypatching; with the default ``fork`` start method on Linux the
patched module state propagates into pool workers, so child-only
behaviours are keyed on the parent PID captured at import time.
"""

import json
import os

import pytest

from repro.experiments import runner
from repro.experiments.runner import clear_cache, run_grid
from repro.experiments.stats import STATS

_PARENT = os.getpid()
"""PID of the pytest process: sabotage keyed on it fires only in
forked pool children, so the serial fallback (run in the parent)
succeeds."""

GRID = dict(scenarios=("s_curve",), controllers=("pure_pursuit",),
            attacks=("gps_bias", "odom_scale"), seeds=(1, 7),
            onset=5.0, duration=12.0)

_REAL_EXECUTE = runner._execute_point


# The sabotage stand-ins are module-level so the pool can pickle them by
# reference (a monkeypatched ``runner._execute_point`` is sent to workers
# by qualified name; forked children already hold this module).

def _poison_odom_scale(point):
    """Kills the *worker process* on odom_scale points — children only,
    so the parent's serial fallback still succeeds."""
    if os.getpid() != _PARENT and point[2] == "odom_scale":
        os._exit(13)
    return _REAL_EXECUTE(point)


def _hang_first_gps_bias(point):
    """Wedges the worker on the (gps_bias, seed 1) point — children only."""
    if os.getpid() != _PARENT and point[2] == "gps_bias" and point[4] == 1:
        import time
        time.sleep(8.0)
    return _REAL_EXECUTE(point)


@pytest.fixture(autouse=True)
def serial_engine(monkeypatch):
    """Pin the serial engine: every test here sabotages
    ``runner._execute_point``, which the auto-selected batch prepass
    would legitimately bypass."""
    monkeypatch.setenv("ADASSURE_SIM", "serial")


@pytest.fixture()
def no_cache(monkeypatch):
    monkeypatch.setenv("ADASSURE_CACHE", "0")
    monkeypatch.setattr(runner, "_RETRY_BACKOFF", 0.0)
    clear_cache()
    yield
    clear_cache()


def _same_runs(a, b):
    assert len(a) == len(b)
    for ra, rb in zip(a, b):
        assert ra.result.trace.records == rb.result.trace.records
        assert ra.report.fired_ids == rb.report.fired_ids


class TestPoolCollapse:
    def test_poisoned_worker_degrades_to_serial(self, no_cache,
                                                monkeypatch):
        expected = run_grid(workers=1, **GRID)
        clear_cache()
        monkeypatch.setattr(runner, "_execute_point", _poison_odom_scale)
        survived = run_grid(workers=2, **GRID)
        assert STATS.last.pool_failures >= 1
        assert STATS.last.quarantined == []
        _same_runs(survived, expected)

    def test_hung_point_times_out_and_reruns_serially(self, no_cache,
                                                      monkeypatch):
        expected = run_grid(workers=1, **GRID)
        clear_cache()
        monkeypatch.setattr(runner, "_execute_point", _hang_first_gps_bias)
        survived = run_grid(workers=2, point_timeout=3.0, **GRID)
        assert STATS.last.timeouts >= 1
        _same_runs(survived, expected)


class TestRetryAndQuarantine:
    def test_flaky_point_succeeds_after_retries(self, no_cache,
                                                monkeypatch):
        attempts = {"n": 0}

        def flaky(point):
            if point[2] == "gps_bias" and point[4] == 1:
                attempts["n"] += 1
                if attempts["n"] <= 2:
                    raise OSError("transient")
            return _REAL_EXECUTE(point)

        monkeypatch.setattr(runner, "_execute_point", flaky)
        runs = run_grid(workers=1, retries=2, **GRID)
        assert len(runs) == 4
        assert STATS.last.retries == 2
        assert STATS.last.quarantined == []

    def test_hopeless_point_is_quarantined_not_fatal(self, no_cache,
                                                     monkeypatch):
        def hopeless(point):
            if point[2] == "odom_scale":
                raise RuntimeError("sick point")
            return _REAL_EXECUTE(point)

        monkeypatch.setattr(runner, "_execute_point", hopeless)
        runs = run_grid(workers=1, retries=1, **GRID)
        assert len(runs) == 2  # both odom_scale points dropped
        assert all(r.attack == "gps_bias" for r in runs)
        quarantined = STATS.last.quarantined
        assert len(quarantined) == 2
        assert all("sick point" in error for _, error in quarantined)
        rendered = STATS.render()
        assert "quarantined" in rendered
        assert "RuntimeError" in rendered

    def test_stats_json_reports_quarantine(self, no_cache, monkeypatch):
        def hopeless(point):
            raise RuntimeError("sick point")

        monkeypatch.setattr(runner, "_execute_point", hopeless)
        runs = run_grid(workers=1, retries=0, **GRID)
        assert runs == []
        payload = STATS.last.as_dict()
        assert len(payload["quarantined"]) == 4
        assert payload["quarantined"][0]["error"].startswith("RuntimeError")


class TestCheckpointResume:
    def test_interrupt_then_resume_reruns_only_missing(self, tmp_path,
                                                       monkeypatch):
        monkeypatch.setenv("ADASSURE_CACHE_DIR", str(tmp_path))
        monkeypatch.delenv("ADASSURE_CACHE", raising=False)
        clear_cache()

        done_before_interrupt = 2
        calls = {"n": 0}

        def interrupted(point):
            if calls["n"] >= done_before_interrupt:
                raise KeyboardInterrupt
            calls["n"] += 1
            return _REAL_EXECUTE(point)

        monkeypatch.setattr(runner, "_execute_point", interrupted)
        with pytest.raises(KeyboardInterrupt):
            run_grid(workers=1, **GRID)

        # The two completed points were checkpointed incrementally.
        manifests = list(tmp_path.rglob("checkpoints/*.json"))
        assert len(manifests) == 1
        ledger = json.loads(manifests[0].read_text())
        assert len(ledger["completed"]) == done_before_interrupt
        assert ledger["total"] == 4

        # Resume: only the missing half executes, the rest are disk hits.
        monkeypatch.setattr(runner, "_execute_point", _REAL_EXECUTE)
        clear_cache()  # drop the memo; force the disk/checkpoint path
        runs = run_grid(workers=1, **GRID)
        assert len(runs) == 4
        assert STATS.last.executed == 4 - done_before_interrupt
        assert STATS.last.disk_hits == done_before_interrupt

        ledger = json.loads(manifests[0].read_text())
        assert len(ledger["completed"]) == 4
        assert ledger["quarantined"] == []
        clear_cache()

    def test_crash_between_commit_and_manifest_is_lossless(self, tmp_path,
                                                           monkeypatch):
        """Die after a point's cache commit but *before* its manifest
        update — the narrowest crash window the commit-before-ledger
        ordering covers.  Resume must neither lose the committed point
        (the cache, not the ledger, is the source of truth) nor run any
        point twice."""
        from repro.experiments.cache import CheckpointManifest, RunCache

        monkeypatch.setenv("ADASSURE_CACHE_DIR", str(tmp_path))
        monkeypatch.delenv("ADASSURE_CACHE", raising=False)
        clear_cache()

        real_complete = CheckpointManifest.complete
        completions = {"n": 0}

        def dying_complete(self, point):
            if completions["n"] >= 2:
                # The point's result is already durable in the cache;
                # this kill leaves only its bookkeeping unwritten.
                raise KeyboardInterrupt
            completions["n"] += 1
            return real_complete(self, point)

        monkeypatch.setattr(CheckpointManifest, "complete", dying_complete)
        with pytest.raises(KeyboardInterrupt):
            run_grid(workers=1, **GRID)

        # Three commits landed (two ledgered, one in the crash window).
        assert RunCache().stats()["entries"] == 3
        manifests = list(tmp_path.rglob("checkpoints/*.json"))
        assert len(manifests) == 1
        assert len(json.loads(manifests[0].read_text())["completed"]) == 2

        # Resume: the unledgered commit is a disk hit, not a re-run.
        monkeypatch.setattr(CheckpointManifest, "complete", real_complete)
        clear_cache()
        runs = run_grid(workers=1, **GRID)
        assert len(runs) == 4
        assert STATS.last.executed == 1      # only the truly missing point
        assert STATS.last.disk_hits == 3     # no point lost...
        assert RunCache().stats()["entries"] == 4  # ...and none doubled
        ledger = json.loads(manifests[0].read_text())
        assert len(ledger["completed"]) == 4
        clear_cache()

    def test_manifest_ledger_matches_grid_identity(self, tmp_path,
                                                   monkeypatch):
        monkeypatch.setenv("ADASSURE_CACHE_DIR", str(tmp_path))
        monkeypatch.delenv("ADASSURE_CACHE", raising=False)
        clear_cache()
        run_grid(workers=1, **GRID)
        # A different grid must get its own ledger, not resume this one.
        run_grid(workers=1, **{**GRID, "seeds": (1,)})
        manifests = list(tmp_path.rglob("checkpoints/*.json"))
        assert len(manifests) == 2
        totals = sorted(json.loads(m.read_text())["total"]
                        for m in manifests)
        assert totals == [2, 4]
        clear_cache()


class TestManifestLease:
    """Two campaigns sharing a manifest dir must not corrupt the ledger:
    the second writer detects the first's live lease, goes read-only, and
    the conflict is reported — never silently lost."""

    def test_concurrent_second_writer_goes_read_only(self, tmp_path,
                                                     monkeypatch):
        from repro.experiments.cache import CheckpointManifest, RunCache

        monkeypatch.setenv("ADASSURE_CACHE_DIR", str(tmp_path))
        monkeypatch.delenv("ADASSURE_CACHE", raising=False)
        cache = RunCache()
        grid = [("s_curve", "pure_pursuit", "gps_bias", 1.0, s, 5.0, 12.0)
                for s in (1, 7, 42)]

        first = CheckpointManifest.for_grid(cache, grid)
        assert not first.lease_conflict
        first.complete(grid[0])

        # A second runner opens the same grid while the first is live.
        second = CheckpointManifest.for_grid(cache, grid)
        assert second.lease_conflict  # reported, not silent
        second.complete(grid[1])
        second.complete(grid[2])

        # The read-only second writer must not have touched the ledger.
        ledger = json.loads(first.path.read_text())
        assert ledger["completed"] == [list(grid[0])]

        # The owner keeps flushing normally.
        first.complete(grid[1])
        ledger = json.loads(first.path.read_text())
        assert len(ledger["completed"]) == 2

        # Once the owner releases, a fresh campaign owns the ledger again.
        first.release()
        third = CheckpointManifest.for_grid(cache, grid)
        assert not third.lease_conflict
        assert third.resumed == 2  # it resumed the owner's ledger intact
        third.release()

    def test_run_grid_reports_lease_conflict(self, tmp_path, monkeypatch):
        from repro.experiments.cache import CheckpointManifest, RunCache

        monkeypatch.setenv("ADASSURE_CACHE_DIR", str(tmp_path))
        monkeypatch.delenv("ADASSURE_CACHE", raising=False)
        clear_cache()

        # Hold the lease for exactly the grid run_grid will build.
        grid = [
            (scenario, controller, attack, 1.0, seed, GRID["onset"],
             GRID["duration"])
            for scenario in GRID["scenarios"]
            for controller in GRID["controllers"]
            for attack in GRID["attacks"]
            for seed in GRID["seeds"]
        ]
        holder = CheckpointManifest.for_grid(RunCache(), grid)
        assert not holder.lease_conflict
        holder.flush()  # materialize the (empty) ledger on disk

        with pytest.warns(RuntimeWarning, match="held by another"):
            runs = run_grid(workers=1, **GRID)
        assert len(runs) == 4  # the campaign itself still completed
        assert STATS.last.lease_conflicts == 1

        # The holder's ledger was never touched by the read-only loser.
        ledger = json.loads(holder.path.read_text())
        assert ledger["completed"] == []
        holder.release()
        clear_cache()
