"""Root-cause diagnosis from assertion evidence.

Given a check report (which assertions fired, how strongly) and the
cause/assertion knowledge base, rank candidate causes by Bayesian
likelihood under an independent-assertions noisy observation model:

    P(evidence | cause) = prod_a  p_a^e_a * (1 - p_a)^(1 - e_a)

with ``p_a`` the cause's fire probability for assertion ``a`` (floored at
the false-positive rate) and ``e_a`` the binarized evidence.  Evidence
strengths refine the binary model: a weakly fired assertion contributes a
fractional exponent, so marginal blips neither fully confirm nor fully
contradict a profile.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

from repro.core.knowledge import KnowledgeBase, default_knowledge_base
from repro.core.verdicts import CheckReport

__all__ = ["Diagnosis", "DiagnosisResult", "MultiDiagnosis",
           "apply_tiebreak", "diagnose", "diagnose_multi"]

_EVIDENCE_THRESHOLD = 0.12
"""Minimum strength for an assertion to count as (partially) fired."""

_PROB_FLOOR = 0.02
_PROB_CEIL = 0.98


@dataclass(frozen=True, slots=True)
class Diagnosis:
    """One ranked candidate cause."""

    cause: str
    description: str
    log_likelihood: float
    posterior: float
    """Posterior under a uniform prior over the knowledge-base causes."""
    supporting: tuple[str, ...]
    """Fired assertions this cause predicts (its confirming evidence)."""
    contradicting: tuple[str, ...]
    """Expected-but-silent assertions (evidence against this cause)."""


@dataclass(slots=True)
class DiagnosisResult:
    """Ranked diagnosis for one run."""

    ranking: list[Diagnosis]
    evidence: dict[str, float]

    def top(self) -> Diagnosis:
        return self.ranking[0]

    def rank_of(self, cause: str) -> int | None:
        """1-based rank of a cause, or None if it is not in the ranking."""
        for i, d in enumerate(self.ranking):
            if d.cause == cause:
                return i + 1
        return None

    def top_k(self, k: int) -> list[str]:
        return [d.cause for d in self.ranking[:k]]

    @property
    def confident(self) -> bool:
        """True when the top cause clearly separates from the runner-up."""
        if len(self.ranking) < 2:
            return True
        return self.ranking[0].posterior >= 2.0 * self.ranking[1].posterior

    @property
    def ambiguous(self) -> bool:
        """Detected-but-not-separated: the counterfactual tie-break trigger.

        True when the evidence does not confidently single out the top
        cause (see :attr:`confident`) — the situation where knowledge-base
        pattern matching has run out and hypothesis testing
        (:func:`repro.experiments.counterfactual.counterfactual_tiebreak`)
        can still separate the candidates.
        """
        return len(self.ranking) >= 2 and not self.confident


def _clip(p: float) -> float:
    return min(max(p, _PROB_FLOOR), _PROB_CEIL)


def diagnose(
    report: CheckReport, kb: KnowledgeBase | None = None
) -> DiagnosisResult:
    """Rank the knowledge base's causes against a check report.

    Args:
        report: output of :func:`repro.core.checker.check_trace` (or an
            online monitor's :meth:`finish`).
        kb: knowledge base (default: the built-in attack profiles).

    Returns:
        A :class:`DiagnosisResult`, ranked most likely cause first.
    """
    if kb is None:
        kb = default_knowledge_base()
    return _rank_evidence(report.evidence(), kb)


def _rank_evidence(evidence: dict[str, float],
                   kb: KnowledgeBase) -> DiagnosisResult:
    scored: list[Diagnosis] = []
    for profile in kb.profiles():
        log_l = 0.0
        supporting: list[str] = []
        contradicting: list[str] = []
        for assertion_id, strength in evidence.items():
            p = _clip(profile.prob(assertion_id))
            if strength >= _EVIDENCE_THRESHOLD:
                # Fractional-exponent interpolation between "fired" and
                # "not fired" keeps weak evidence weak.
                w = min(strength, 1.0)
                log_l += w * math.log(p) + (1.0 - w) * math.log(1.0 - p)
                if profile.prob(assertion_id) > 0.3:
                    supporting.append(assertion_id)
            else:
                log_l += math.log(1.0 - p)
                if profile.prob(assertion_id) >= 0.6:
                    contradicting.append(assertion_id)
        scored.append(
            Diagnosis(
                cause=profile.cause,
                description=profile.description,
                log_likelihood=log_l,
                posterior=0.0,  # filled in below
                supporting=tuple(supporting),
                contradicting=tuple(contradicting),
            )
        )

    # Posterior under a uniform prior (log-sum-exp for stability).
    max_ll = max(d.log_likelihood for d in scored)
    total = sum(math.exp(d.log_likelihood - max_ll) for d in scored)
    import dataclasses

    scored = [
        dataclasses.replace(
            d, posterior=math.exp(d.log_likelihood - max_ll) / total
        )
        for d in scored
    ]
    # Exact ties are broken by cause name so the ranking is deterministic
    # (dict insertion order of the knowledge base is an implementation
    # detail, not a diagnosis).
    scored.sort(key=lambda d: (-d.log_likelihood, d.cause))
    return DiagnosisResult(ranking=scored, evidence=evidence)


def apply_tiebreak(result: DiagnosisResult, scores: dict[str, float],
                   ) -> DiagnosisResult:
    """Re-order the head of a ranking by an external score (lower = better).

    The counterfactual hypothesis test produces, per candidate cause, a
    distance between the observed assertion signature and the signature
    that cause *actually* produces when re-simulated.  This folds those
    scores back into the ranking: only causes present in ``scores`` move,
    and only among the positions they already occupy — the likelihood
    ranking of everything unprobed is left untouched.  Score ties fall
    back to the original likelihood order.
    """
    if not scores:
        return result
    positions = [i for i, d in enumerate(result.ranking) if d.cause in scores]
    reordered = sorted(
        (result.ranking[i] for i in positions),
        key=lambda d: (scores[d.cause], result.ranking.index(d)),
    )
    ranking = list(result.ranking)
    for i, d in zip(positions, reordered):
        ranking[i] = d
    return DiagnosisResult(ranking=ranking, evidence=dict(result.evidence))


@dataclass(slots=True)
class MultiDiagnosis:
    """Result of the iterative multi-cause diagnosis."""

    causes: list[Diagnosis]
    """Accepted causes, in explanation order (strongest first)."""
    residual_evidence: dict[str, float]
    """Evidence left unexplained after all accepted causes."""
    rounds: list[DiagnosisResult]
    """The per-round single-cause rankings (for inspection)."""

    @property
    def cause_set(self) -> frozenset[str]:
        return frozenset(d.cause for d in self.causes)

    @property
    def fully_explained(self) -> bool:
        """True when no strong evidence remains unexplained."""
        return all(s < _EVIDENCE_THRESHOLD
                   for s in self.residual_evidence.values())


def diagnose_multi(
    report: CheckReport,
    kb: KnowledgeBase | None = None,
    max_causes: int = 3,
    explain_prob: float = 0.3,
) -> MultiDiagnosis:
    """Iterative explain-away diagnosis for *concurrent* faults.

    A single-cause ranking degrades when two faults superpose (E11): the
    dominant cause's evidence swamps the other's. This greedy loop fixes
    that: accept the top-ranked cause, remove the evidence it predicts
    (fire probability >= ``explain_prob``), and re-rank the *residual*
    evidence — repeating until nothing strong remains or ``none`` wins.

    Args:
        report: the check report.
        kb: knowledge base (default: the built-in attack profiles).
        max_causes: upper bound on accepted causes.
        explain_prob: an accepted cause explains the assertions it
            predicts with at least this probability.

    Returns:
        A :class:`MultiDiagnosis`; for a single-fault run its
        ``cause_set`` matches the single-cause top-1.
    """
    if kb is None:
        kb = default_knowledge_base()
    if max_causes < 1:
        raise ValueError("max_causes must be >= 1")

    remaining = dict(report.evidence())
    causes: list[Diagnosis] = []
    rounds: list[DiagnosisResult] = []
    for _ in range(max_causes):
        if all(s < _EVIDENCE_THRESHOLD for s in remaining.values()):
            break
        result = _rank_evidence(remaining, kb)
        rounds.append(result)
        top = result.top()
        if top.cause == "none":
            break
        causes.append(top)
        profile = kb.profile(top.cause)
        # Explained assertions are *removed*, not zeroed: zeroing would
        # make evidence the first cause already accounts for count as
        # contradicting silence against every later candidate.
        for aid, strength in list(remaining.items()):
            if strength >= _EVIDENCE_THRESHOLD and (
                profile.prob(aid) >= explain_prob
            ):
                del remaining[aid]
    return MultiDiagnosis(causes=causes, residual_evidence=remaining,
                          rounds=rounds)
