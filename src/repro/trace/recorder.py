"""Trace recorder: assembles per-step records inside the engine loop."""

from __future__ import annotations

from repro.trace.schema import Trace, TraceMeta, TraceRecord

__all__ = ["TraceRecorder"]


class TraceRecorder:
    """Builds a :class:`~repro.trace.schema.Trace` one step at a time.

    The recorder also implements the zero-order hold for sensor channels:
    callers pass only *fresh* readings and the recorder carries the last
    value forward, setting the ``*_fresh`` flags accordingly.

    Appending is row-oriented on purpose — the engine produces one record
    per control step — and invalidates the trace's cached columnar view;
    analysis code should grab ``trace.columns()`` only after the run
    finishes, when the view is built once and stays cached.
    """

    def __init__(self, meta: TraceMeta):
        self.trace = Trace(meta)
        self._last_gps = (0.0, 0.0)
        self._last_imu = (0.0, 0.0)
        self._last_odom = 0.0
        self._last_compass = 0.0
        self._last_radar = (0.0, 0.0)

    def record(
        self,
        *,
        step: int,
        t: float,
        truth: dict,
        gps: tuple[float, float] | None,
        imu: tuple[float, float] | None,
        odom: float | None,
        compass: float | None,
        estimate: dict,
        control: dict,
        actuation: dict,
        attack: dict,
        radar: tuple[float, float] | None = None,
        lead: dict | None = None,
        fault: dict | None = None,
        supervisor: dict | None = None,
    ) -> TraceRecord:
        """Assemble and append one record; returns it for online use."""
        if gps is not None:
            self._last_gps = gps
        if imu is not None:
            self._last_imu = imu
        if odom is not None:
            self._last_odom = odom
        if compass is not None:
            self._last_compass = compass
        if radar is not None:
            self._last_radar = radar

        record = TraceRecord(
            step=step,
            t=t,
            true_x=truth["x"],
            true_y=truth["y"],
            true_yaw=truth["yaw"],
            true_v=truth["v"],
            true_yaw_rate=truth["yaw_rate"],
            true_accel=truth["accel"],
            true_lat_accel=truth["lat_accel"],
            cte_true=truth["cte"],
            heading_err_true=truth["heading_err"],
            station_true=truth["station"],
            dist_to_goal=truth["dist_to_goal"],
            gps_x=self._last_gps[0],
            gps_y=self._last_gps[1],
            gps_fresh=gps is not None,
            imu_yaw_rate=self._last_imu[0],
            imu_accel=self._last_imu[1],
            imu_fresh=imu is not None,
            odom_speed=self._last_odom,
            odom_fresh=odom is not None,
            compass_yaw=self._last_compass,
            compass_fresh=compass is not None,
            radar_range=self._last_radar[0],
            radar_range_rate=self._last_radar[1],
            radar_fresh=radar is not None,
            lead_present=lead is not None,
            gap_true=lead["gap"] if lead else 0.0,
            lead_speed=lead["speed"] if lead else 0.0,
            est_x=estimate["x"],
            est_y=estimate["y"],
            est_yaw=estimate["yaw"],
            est_v=estimate["v"],
            est_cov_trace=estimate["cov_trace"],
            nis_gps=estimate["nis_gps"],
            nis_speed=estimate["nis_speed"],
            nis_compass=estimate["nis_compass"],
            cte_est=control["cte"],
            heading_err_est=control["heading_err"],
            station_est=control["station"],
            target_speed=control["target_speed"],
            steer_cmd=control["steer_cmd"],
            accel_cmd=control["accel_cmd"],
            steer_applied=actuation["steer"],
            accel_applied=actuation["accel"],
            attack_active=attack["active"],
            attack_name=attack["name"],
            attack_channel=attack["channel"],
            fault_active=fault["active"] if fault else False,
            fault_name=fault["name"] if fault else "",
            fault_channel=fault["channel"] if fault else "",
            supervisor_mode=supervisor["mode"] if supervisor else "",
            supervisor_lost=supervisor["lost"] if supervisor else 0,
        )
        self.trace.append(record)
        return record
