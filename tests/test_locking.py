"""Tests for repro.locking.FileLease: advisory shared-directory guard."""

import json
import time

import pytest

from repro.locking import DEFAULT_LEASE_TTL, FileLease, LeaseConflict


class TestFileLease:
    def test_acquire_release_roundtrip(self, tmp_path):
        lease = FileLease(tmp_path / "grid.lease")
        assert lease.acquire()
        assert lease.held
        assert lease.path.exists()
        lease.release()
        assert not lease.held
        assert not lease.path.exists()

    def test_second_writer_conflicts(self, tmp_path):
        first = FileLease(tmp_path / "grid.lease")
        second = FileLease(tmp_path / "grid.lease")
        assert first.acquire()
        assert not second.acquire()
        assert not second.held
        with pytest.raises(LeaseConflict, match=first.owner_id):
            second.acquire(raising=True)
        # The loser learns who holds the resource.
        assert second.holder()["owner"] == first.owner_id

    def test_released_lease_is_acquirable(self, tmp_path):
        first = FileLease(tmp_path / "grid.lease")
        second = FileLease(tmp_path / "grid.lease")
        first.acquire()
        first.release()
        assert second.acquire()

    def test_reacquire_own_lease_is_idempotent(self, tmp_path):
        lease = FileLease(tmp_path / "grid.lease")
        assert lease.acquire()
        assert lease.acquire()

    def test_stale_lease_broken_after_ttl(self, tmp_path):
        path = tmp_path / "grid.lease"
        abandoned = FileLease(path, ttl=0.05)
        abandoned.acquire()
        time.sleep(0.1)
        taker = FileLease(path, ttl=0.05)
        assert taker.acquire()
        assert taker.holder()["owner"] == taker.owner_id
        # The original owner must not delete the new owner's lease.
        abandoned.release()
        assert path.exists()
        assert taker.holder()["owner"] == taker.owner_id

    def test_refresh_keeps_lease_fresh(self, tmp_path):
        path = tmp_path / "grid.lease"
        owner = FileLease(path, ttl=0.3)
        owner.acquire()
        contender = FileLease(path, ttl=0.3)
        for _ in range(4):
            time.sleep(0.1)
            owner.refresh()
            assert not contender.acquire()

    def test_corrupt_lease_file_treated_as_abandoned(self, tmp_path):
        path = tmp_path / "grid.lease"
        path.write_text("{not json")
        lease = FileLease(path)
        assert lease.acquire()
        assert json.loads(path.read_text())["owner"] == lease.owner_id

    def test_context_manager(self, tmp_path):
        path = tmp_path / "grid.lease"
        with FileLease(path) as lease:
            assert lease.held
            with pytest.raises(LeaseConflict):
                FileLease(path).acquire(raising=True)
        assert not path.exists()

    def test_ttl_env_override(self, tmp_path, monkeypatch):
        monkeypatch.setenv("ADASSURE_LEASE_TTL", "123.5")
        assert FileLease(tmp_path / "x.lease").ttl == 123.5
        monkeypatch.setenv("ADASSURE_LEASE_TTL", "bogus")
        assert FileLease(tmp_path / "x.lease").ttl == DEFAULT_LEASE_TTL
