"""Tests for the binary (.npz) trace format and the columnar backend.

The binary format is the run cache's payload, so its failure modes are
load-bearing: a corrupt, truncated or future-version payload must raise
:class:`TraceIOError` (which the cache maps to evict-and-rerun), never
yield a silently wrong trace.
"""

import io
import json

import numpy as np
import pytest

from repro.trace.io import (
    TRACE_NPZ_VERSION,
    TraceIOError,
    read_trace_auto,
    read_trace_npz,
    trace_from_bytes,
    trace_from_npz_bytes,
    trace_to_jsonl_bytes,
    trace_to_npz_bytes,
    write_trace_jsonl,
    write_trace_npz,
)
from repro.trace.schema import Trace, TraceMeta

from conftest import make_trace


def sample_trace():
    def mutate(step, record):
        if step % 4 == 0:
            return record.replace(gps_fresh=False, attack_active=True,
                                  attack_name="gps_bias",
                                  attack_channel="gps",
                                  supervisor_mode="normal",
                                  supervisor_lost=step % 3)
        if step == 7:
            return record.replace(est_v=float("nan"))
        return record

    return make_trace(
        30,
        meta=TraceMeta(scenario="s_curve", controller="mpc",
                       attack="gps_bias", seed=11, dt=0.05,
                       route_length=321.5, extra={"note": "binary"}),
        mutate=mutate,
    )


def repack_npz(data: bytes, *, header: dict | None = None,
               drop: str | None = None) -> bytes:
    """Rewrite an npz payload with a patched header / a member removed."""
    with np.load(io.BytesIO(data), allow_pickle=False) as npz:
        members = {name: npz[name] for name in npz.files}
    if header is not None:
        members["header"] = np.asarray(json.dumps(header))
    if drop is not None:
        del members[drop]
    buf = io.BytesIO()
    np.savez_compressed(buf, **members)
    return buf.getvalue()


def npz_header(data: bytes) -> dict:
    with np.load(io.BytesIO(data), allow_pickle=False) as npz:
        return json.loads(str(npz["header"][()]))


class TestRoundTrip:
    def test_bytes_roundtrip_exact(self):
        trace = sample_trace()
        back = trace_from_npz_bytes(trace_to_npz_bytes(trace))
        assert len(back) == len(trace)
        assert back.meta.to_dict() == trace.meta.to_dict()
        for a, b in zip(trace, back):
            # NaN != NaN breaks whole-record equality; compare field-wise.
            for name in Trace.field_names:
                va, vb = getattr(a, name), getattr(b, name)
                assert va == vb or (va != va and vb != vb), name

    def test_file_roundtrip(self, tmp_path):
        trace = sample_trace()
        path = tmp_path / "trace.npz"
        write_trace_npz(trace, path)
        back = read_trace_npz(path)
        assert len(back) == len(trace)
        assert back.meta.to_dict() == trace.meta.to_dict()

    def test_typed_channels_preserved(self):
        trace = sample_trace()
        back = trace_from_npz_bytes(trace_to_npz_bytes(trace))
        assert [r.gps_fresh for r in back] == [r.gps_fresh for r in trace]
        assert [r.supervisor_lost for r in back] == [
            r.supervisor_lost for r in trace]
        assert [r.attack_name for r in back] == [
            r.attack_name for r in trace]
        assert all(isinstance(r.step, int) for r in back)

    def test_empty_trace_roundtrip(self):
        trace = Trace(TraceMeta(scenario="empty"))
        back = trace_from_npz_bytes(trace_to_npz_bytes(trace))
        assert len(back) == 0
        assert back.meta.scenario == "empty"

    def test_payload_is_deterministic(self):
        trace = sample_trace()
        assert trace_to_npz_bytes(trace) == trace_to_npz_bytes(trace)


class TestRejection:
    def test_version_mismatch_rejected(self):
        data = trace_to_npz_bytes(sample_trace())
        header = npz_header(data)
        header["version"] = TRACE_NPZ_VERSION + 1
        patched = repack_npz(data, header=header)
        with pytest.raises(TraceIOError, match="unsupported trace format"):
            trace_from_npz_bytes(patched)

    def test_foreign_format_name_rejected(self):
        data = trace_to_npz_bytes(sample_trace())
        header = npz_header(data)
        header["format"] = "somebody-elses-trace"
        with pytest.raises(TraceIOError, match="not an adassure trace"):
            trace_from_npz_bytes(repack_npz(data, header=header))

    def test_headerless_npz_rejected(self):
        buf = io.BytesIO()
        np.savez_compressed(buf, stuff=np.arange(5))
        with pytest.raises(TraceIOError, match="no header"):
            trace_from_npz_bytes(buf.getvalue())

    def test_missing_channel_rejected(self):
        data = trace_to_npz_bytes(sample_trace())
        with pytest.raises(TraceIOError, match="missing channel"):
            trace_from_npz_bytes(repack_npz(data, drop="col_est_v"))

    def test_record_count_mismatch_rejected(self):
        data = trace_to_npz_bytes(sample_trace())
        header = npz_header(data)
        header["n"] = header["n"] + 5
        with pytest.raises(TraceIOError, match="header claims"):
            trace_from_npz_bytes(repack_npz(data, header=header))

    @pytest.mark.parametrize("cut", [0.25, 0.5, 0.9])
    def test_truncated_payload_rejected(self, cut):
        data = trace_to_npz_bytes(sample_trace())
        with pytest.raises(TraceIOError):
            trace_from_npz_bytes(data[: int(len(data) * cut)])

    def test_garbage_rejected(self):
        with pytest.raises(TraceIOError):
            trace_from_npz_bytes(b"PK\x03\x04 but not actually a zip")

    def test_file_errors_carry_path(self, tmp_path):
        path = tmp_path / "trace.npz"
        write_trace_npz(sample_trace(), path)
        data = path.read_bytes()
        path.write_bytes(data[: len(data) // 2])
        with pytest.raises(TraceIOError, match="trace.npz"):
            read_trace_npz(path)


class TestFormatSniffing:
    """trace_from_bytes / read_trace_auto dispatch on magic, not suffix."""

    def test_bytes_sniffs_npz(self):
        trace = sample_trace()
        assert len(trace_from_bytes(trace_to_npz_bytes(trace))) == len(trace)

    def test_bytes_sniffs_gzip_jsonl(self):
        trace = sample_trace()
        data = trace_to_jsonl_bytes(trace)  # gzip'd JSONL (legacy cache)
        assert len(trace_from_bytes(data)) == len(trace)

    def test_bytes_sniffs_plain_jsonl(self):
        trace = sample_trace()
        data = trace_to_jsonl_bytes(trace, compress=False)
        assert len(trace_from_bytes(data)) == len(trace)

    def test_auto_reads_npz_under_any_suffix(self, tmp_path):
        trace = sample_trace()
        path = tmp_path / "trace.jsonl"  # lying suffix
        path.write_bytes(trace_to_npz_bytes(trace))
        assert len(read_trace_auto(path)) == len(trace)

    def test_auto_reads_jsonl(self, tmp_path):
        trace = sample_trace()
        path = tmp_path / "trace.jsonl"
        write_trace_jsonl(trace, path)
        assert len(read_trace_auto(path)) == len(trace)

    def test_auto_reads_gzip_under_plain_suffix(self, tmp_path):
        trace = sample_trace()
        path = tmp_path / "trace.bin"
        path.write_bytes(trace_to_jsonl_bytes(trace))
        assert len(read_trace_auto(path)) == len(trace)


class TestColumnarBackend:
    def test_columns_cached_until_append(self):
        trace = make_trace(10)
        first = trace.columns()
        assert trace.columns() is first  # cached
        trace.append(trace[9].replace(step=10, t=0.5))
        rebuilt = trace.columns()
        assert rebuilt is not first  # invalidated by append
        assert rebuilt.n == 11

    def test_columns_read_only(self):
        cols = make_trace(5).columns()
        with pytest.raises(ValueError):
            cols.get("t")[0] = 99.0

    def test_from_columns_is_lazy(self):
        trace = sample_trace()
        loaded = trace_from_npz_bytes(trace_to_npz_bytes(trace))
        # Columnar access must not materialize per-record storage.
        assert len(loaded) == len(trace)
        loaded.columns()
        assert loaded._records is None
        # First record access builds the row view on demand.
        assert loaded[0].step == trace[0].step
        assert loaded._records is not None

    def test_from_columns_rejects_ragged(self):
        trace = make_trace(5)
        arrays = {name: trace.columns().get(name)
                  for name in Trace.field_names}
        arrays["t"] = arrays["t"][:3]
        with pytest.raises(ValueError, match="ragged"):
            Trace.from_columns(trace.meta, arrays)

    def test_from_columns_rejects_missing(self):
        with pytest.raises(ValueError, match="missing channels"):
            Trace.from_columns(None, {"t": np.zeros(3)})

    def test_materialized_records_compare_equal(self):
        trace = make_trace(12)
        loaded = trace_from_npz_bytes(trace_to_npz_bytes(trace))
        assert loaded.records == trace.records
