"""A thin CARLA-Python-API-shaped facade over the simulator.

The paper drives its vehicle under test through the CARLA Python API; this
package exposes the same interaction shape — a ``World`` that is ticked, a
vehicle actor that receives ``VehicleControl`` commands, and sensor actors
that push measurements to ``listen()`` callbacks — so code written against
the paper's tooling ports to this repo by swapping the import.

Only the surface needed by ADAssure-style tooling is provided: this is an
API-compatibility layer, not a CARLA re-implementation (the physics and
sensor models live in :mod:`repro.sim`).
"""

from repro.carla_lite.control import VehicleControl
from repro.carla_lite.sensors import SensorActor
from repro.carla_lite.world import Transform, VehicleActor, World

__all__ = ["World", "VehicleActor", "VehicleControl", "SensorActor", "Transform"]
