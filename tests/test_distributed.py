"""Distributed campaign backend: specs, shard boards, workers, health.

Unit-level coverage of :mod:`repro.experiments.distributed` — the grid
spec a worker on another host re-enumerates the campaign from, the
lease-claimed shard board, the heartbeat thread, the in-process worker
loop, and the ``lease_health`` report ``adassure cache stats`` prints.
The end-to-end failure injection (SIGKILLed workers, duplicate
claimants, torn writes) lives in ``test_distributed_chaos.py``.
"""

import json
import time

import pytest

import repro
from repro.experiments import runner
from repro.experiments.backend import retry_cap, retry_delay
from repro.experiments.cache import RunCache, cache_key
from repro.experiments.distributed import (
    GridSpec,
    HeartbeatThread,
    ShardBoard,
    lease_health,
    resolve_shard_points,
    run_worker,
)
from repro.experiments.runner import clear_cache, run_grid
from repro.experiments.stats import STATS
from repro.locking import FileLease, lease_state

GRID = dict(scenarios=("s_curve",), controllers=("pure_pursuit",),
            attacks=("none", "gps_bias"), seeds=(1, 7),
            onset=5.0, duration=6.0)


def _spec(shard_points=1):
    return GridSpec.build(
        scenarios=GRID["scenarios"], controllers=GRID["controllers"],
        attacks=GRID["attacks"], seeds=GRID["seeds"], intensity=1.0,
        onset=GRID["onset"], duration=GRID["duration"],
        shard_points=shard_points)


@pytest.fixture()
def cache_dir(tmp_path, monkeypatch):
    monkeypatch.setenv("ADASSURE_CACHE_DIR", str(tmp_path))
    monkeypatch.delenv("ADASSURE_CACHE", raising=False)
    clear_cache()
    yield tmp_path
    clear_cache()


class TestGridSpec:
    def test_roundtrip_preserves_points(self, cache_dir):
        spec = _spec(shard_points=2)
        path = spec.save(RunCache())
        loaded = GridSpec.load(path)
        assert loaded == spec
        assert loaded.points() == spec.points()
        # The point list matches what run_grid itself would enumerate.
        assert len(spec.points()) == 4
        assert all(isinstance(p[4], int) for p in spec.points())

    def test_version_mismatch_refused(self, cache_dir):
        spec = _spec()
        path = spec.save(RunCache())
        payload = json.loads(path.read_text())
        payload["code"] = "0.0.1"
        path.write_text(json.dumps(payload))
        with pytest.raises(ValueError, match="mixed-version"):
            GridSpec.load(path)

    def test_catalog_mismatch_refused(self, cache_dir):
        spec = _spec()
        path = spec.save(RunCache())
        payload = json.loads(path.read_text())
        payload["catalog"] = "deadbeef"
        path.write_text(json.dumps(payload))
        with pytest.raises(ValueError, match="catalog"):
            GridSpec.load(path)

    def test_grid_id_matches_code_version(self, cache_dir):
        assert _spec().code == repro.__version__


class TestShardBoard:
    def test_shards_cover_grid_disjointly(self, cache_dir):
        spec = _spec(shard_points=3)
        board = ShardBoard(RunCache(), spec)
        covered = []
        for shard in board.shards:
            covered.extend(board.shard_points(shard))
        assert covered == spec.points()

    def test_ensure_is_idempotent(self, cache_dir):
        board = ShardBoard(RunCache(), _spec())
        board.ensure()
        first = board.board_path.read_bytes()
        board.ensure()
        assert board.board_path.read_bytes() == first

    def test_ensure_repairs_torn_board(self, cache_dir):
        board = ShardBoard(RunCache(), _spec())
        board.ensure()
        board.board_path.write_text("{torn")  # torn write
        board.ensure()
        payload = json.loads(board.board_path.read_text())
        assert payload["grid_id"] == board.spec.grid_id

    def test_claim_is_exclusive_until_release(self, cache_dir):
        board = ShardBoard(RunCache(), _spec())
        board.ensure()
        lease = board.claim(0, ttl=60.0, owner_hint="a")
        assert lease is not None
        assert board.claim(0, ttl=60.0, owner_hint="b") is None
        lease.release()
        second = board.claim(0, ttl=60.0, owner_hint="b")
        assert second is not None
        second.release()

    def test_stale_lease_is_broken(self, cache_dir):
        board = ShardBoard(RunCache(), _spec())
        board.ensure()
        # A dead claimant: a lease whose heartbeat is long past the TTL.
        board.lease_path(0).parent.mkdir(parents=True, exist_ok=True)
        board.lease_path(0).write_text(json.dumps(
            {"owner": "corpse", "heartbeat": time.time() - 9999.0}))
        lease = board.claim(0, ttl=1.0, owner_hint="survivor")
        assert lease is not None
        assert lease.stale_breaks == 1
        lease.release()

    def test_done_record_validates_grid_and_index(self, cache_dir):
        board = ShardBoard(RunCache(), _spec())
        board.ensure()
        board.mark_done(0, {"points": 1})
        assert board.is_done(0)
        # A record for another grid (or a torn write) is "not done".
        other = {"grid_id": "someone-else", "shard": 1, "points": 1}
        board.done_path(1).write_text(json.dumps(other))
        board.done_path(1).write_text(
            json.dumps({**other, "grid_id": "x"}))
        assert not board.is_done(1)
        board.done_path(2).write_text("{torn")
        assert not board.is_done(2)
        assert not board.all_done()

    def test_status_counts(self, cache_dir):
        board = ShardBoard(RunCache(), _spec())
        board.ensure()
        board.mark_done(0, {})
        lease = board.claim(1, ttl=60.0)
        board.lease_path(2).write_text(json.dumps(
            {"owner": "corpse", "heartbeat": time.time() - 9999.0}))
        counts = board.status(ttl=60.0)
        assert counts == {"shards": 4, "done": 1, "leased": 1,
                          "stale": 1, "open": 1}
        lease.release()


class TestHeartbeat:
    def test_heartbeat_keeps_lease_fresh(self, cache_dir, tmp_path):
        lease = FileLease(tmp_path / "hb.lease", ttl=0.4)
        assert lease.acquire()
        beat = HeartbeatThread(lease)  # interval = ttl/4 = 0.1s
        beat.start()
        try:
            time.sleep(1.0)  # > 2x TTL: without heartbeats this is stale
            assert lease_state(lease.path, ttl=0.4) == "active"
        finally:
            beat.stop()
        assert beat.beats >= 2
        assert not beat.is_alive()
        lease.release()


class TestRetryBackoff:
    def test_jitter_stays_in_band(self):
        for failures in (1, 2, 3):
            nominal = 0.25 * (2 ** (failures - 1))
            for _ in range(50):
                delay = retry_delay(failures, 0.0, base=0.25, cap=1e9)
                assert 0.5 * nominal <= delay < 1.5 * nominal

    def test_total_sleep_is_capped(self):
        assert retry_delay(1, slept=5.0, base=0.25, cap=5.0) == 0.0
        # Near the cap, the delay is clipped to the remaining budget.
        assert retry_delay(10, slept=4.9, base=0.25, cap=5.0) <= 0.1 + 1e-9

    def test_cap_from_env(self, monkeypatch):
        monkeypatch.setenv("ADASSURE_RETRY_CAP", "7.5")
        assert retry_cap() == 7.5
        monkeypatch.setenv("ADASSURE_RETRY_CAP", "not-a-number")
        assert retry_cap() == 30.0

    def test_base_tracks_runner_backoff(self, monkeypatch):
        # Tests zero the module backoff to skip sleeps; retry_delay must
        # honour that patch when no explicit base is given.
        monkeypatch.setattr(runner, "_RETRY_BACKOFF", 0.0)
        assert retry_delay(3, 0.0) == 0.0


class TestResolvers:
    def test_resolve_executor(self, monkeypatch):
        monkeypatch.delenv("ADASSURE_EXECUTOR", raising=False)
        assert runner.resolve_executor() == "auto"
        assert runner.resolve_executor("distributed") == "distributed"
        monkeypatch.setenv("ADASSURE_EXECUTOR", "pool")
        assert runner.resolve_executor() == "pool"
        with pytest.raises(ValueError, match="unknown executor"):
            runner.resolve_executor("teleport")

    def test_resolve_dist_workers(self, monkeypatch):
        monkeypatch.delenv("ADASSURE_DIST_WORKERS", raising=False)
        assert runner.resolve_dist_workers(3) == 3
        assert runner.resolve_dist_workers() >= 2
        monkeypatch.setenv("ADASSURE_DIST_WORKERS", "5")
        assert runner.resolve_dist_workers() == 5

    def test_resolve_shard_points(self, monkeypatch):
        monkeypatch.delenv("ADASSURE_SHARD_POINTS", raising=False)
        assert resolve_shard_points(100, 4, 10) == 10
        # Heuristic: ~4 shards per worker.
        assert resolve_shard_points(160, 4) == 10
        assert resolve_shard_points(3, 8) == 1
        monkeypatch.setenv("ADASSURE_SHARD_POINTS", "25")
        assert resolve_shard_points(100, 4) == 25


class TestRunWorker:
    def test_single_worker_converges_campaign(self, cache_dir):
        spec = _spec(shard_points=2)
        report = run_worker(spec, worker_id="solo", ttl=30.0)
        assert report.shards_claimed == 2
        assert report.points_executed == 4
        assert report.points_skipped == 0
        assert report.quarantined == []
        cache = RunCache()
        board = ShardBoard(cache, spec)
        assert board.all_done()
        # Every point committed exactly once, under its canonical key.
        for point in spec.points():
            assert cache.contains(cache_key(*point, catalog=spec.catalog))
        assert cache.stats()["entries"] == 4

    def test_worker_skips_already_committed_points(self, cache_dir):
        # A serial campaign (or a dead claimant) already committed
        # everything: the worker only writes done markers.
        run_grid(workers=1, executor="serial", **GRID)
        clear_cache()  # memo only; the disk commits stay
        spec = _spec(shard_points=2)
        report = run_worker(spec, worker_id="late", ttl=30.0)
        assert report.points_executed == 0
        assert report.points_skipped == 4
        assert report.shards_reclaimed == 2  # resumed someone else's work
        assert RunCache().stats()["entries"] == 4

    def test_worker_requires_disk_cache(self, monkeypatch):
        monkeypatch.setenv("ADASSURE_CACHE", "0")
        with pytest.raises(ValueError, match="disk cache"):
            run_worker(_spec())

    def test_worker_respects_max_shards(self, cache_dir):
        spec = _spec(shard_points=1)
        report = run_worker(spec, worker_id="partial", max_shards=2,
                            ttl=30.0)
        assert report.shards_claimed == 2
        assert report.points_executed == 2
        assert not ShardBoard(RunCache(), spec).all_done()

    def test_worker_report_serializes(self, cache_dir):
        spec = _spec(shard_points=4)
        report = run_worker(spec, worker_id="json", ttl=30.0)
        payload = report.as_dict()
        assert payload["worker_id"] == "json"
        assert payload["points_executed"] == 4
        json.dumps(payload)  # machine-readable for the CLI


class TestLeaseHealth:
    def test_empty_cache_is_healthy(self, cache_dir):
        health = lease_health(RunCache())
        assert health == {"active_leases": 0, "stale_leases": 0,
                          "orphaned_shards": 0, "lease_conflicts": 0,
                          "shard_boards": 0}

    def test_active_and_stale_leases_counted(self, cache_dir):
        cache = RunCache()
        board = ShardBoard(cache, _spec())
        board.ensure()
        lease = board.claim(0, ttl=60.0)
        board.lease_path(1).write_text(json.dumps(
            {"owner": "corpse", "heartbeat": time.time() - 9999.0}))
        health = lease_health(cache, ttl=60.0)
        assert health["shard_boards"] == 1
        assert health["active_leases"] == 1
        assert health["stale_leases"] == 1
        lease.release()

    def test_orphans_detected(self, cache_dir):
        cache = RunCache()
        board = ShardBoard(cache, _spec())
        board.ensure()
        # A corpse's lease left next to an already-done shard.
        board.mark_done(0, {})
        board.lease_path(0).write_text(json.dumps(
            {"owner": "corpse", "heartbeat": time.time() - 9999.0}))
        health = lease_health(cache, ttl=60.0)
        assert health["orphaned_shards"] == 1
        # Shard state without a readable board is also orphaned.
        board.board_path.write_text("{torn")
        health = lease_health(cache, ttl=60.0)
        assert health["orphaned_shards"] == 1  # counted via the torn board

    def test_conflict_events_surface(self, cache_dir):
        cache = RunCache()
        cache.log_lease_event("shard-lease-lost", {"shard": 0})
        assert lease_health(cache)["lease_conflicts"] == 1


class TestDistributedRunGrid:
    def test_distributed_matches_serial_run(self, cache_dir, tmp_path_factory):
        expected = run_grid(workers=1, executor="serial", **GRID)
        # A fresh cache directory: the fleet must re-execute everything.
        import os
        os.environ["ADASSURE_CACHE_DIR"] = str(
            tmp_path_factory.mktemp("dist"))
        clear_cache()
        STATS.reset()
        runs = run_grid(executor="distributed", dist_workers=2,
                        shard_points=1, **GRID)
        assert len(runs) == len(expected) == 4
        for got, want in zip(runs, expected):
            assert got.result.trace.records == want.result.trace.records
            assert got.report.fired_ids == want.report.fired_ids
            assert got.diagnosis.top_k(1) == want.diagnosis.top_k(1)
        stats = STATS.last
        assert stats.executor == "distributed"
        assert stats.pool_policy == "distributed"
        assert stats.shards_total == 4
        assert stats.dist_points + stats.executed == 4
        assert RunCache().stats()["entries"] == 4  # exactly once

    def test_distributed_without_cache_falls_back(self, monkeypatch):
        monkeypatch.setenv("ADASSURE_CACHE", "0")
        clear_cache()
        with pytest.warns(RuntimeWarning, match="shared result store"):
            runs = run_grid(executor="distributed", workers=1, **GRID)
        assert len(runs) == 4
        assert STATS.last.executor == "local"
        clear_cache()
